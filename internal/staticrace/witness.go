package staticrace

import (
	"fmt"
	"sort"

	"haccrg/internal/isa"
)

// WitnessSchema versions the witness report format for downstream
// parsers.
const WitnessSchema = "haccrg-witness/1"

// Witness kinds.
const (
	WitnessRace       = "race"
	WitnessDivergence = "divergence"
	WitnessOOB        = "oob"
	WitnessFence      = "fence"
)

// Race witness classes.
const (
	ClassCrossBlockWAW = "cross-block-waw"
	ClassSameBlockWAW  = "same-block-waw"
	ClassSharedEpoch   = "shared-epoch"
)

// Witness is one machine-checked proof of a defect: a concrete pair of
// threads, an instruction pair, and (for races) an overlapping
// granule. No witness ships unverified — the checker re-derives every
// claim independently and unverifiable witnesses are dropped and
// counted.
type Witness struct {
	Kind     string `json:"kind"` // race | divergence | oob | fence
	Kernel   string `json:"kernel"`
	Class    string `json:"class,omitempty"` // race witnesses: guarantee argument used
	Space    string `json:"space,omitempty"`
	PC       int    `json:"pc"`
	PC2      int    `json:"pc2,omitempty"`
	Granule  uint64 `json:"granule,omitempty"` // runtime granule index (shared: window-relative)
	Addr     uint64 `json:"addr,omitempty"`
	Addr2    uint64 `json:"addr2,omitempty"`
	Block    int    `json:"block"`
	Tid      int    `json:"tid"`
	Block2   int    `json:"block2,omitempty"`
	Tid2     int    `json:"tid2,omitempty"`
	Method   string `json:"method"` // replay | expr
	Verified bool   `json:"verified"`
	Detail   string `json:"detail,omitempty"`
}

// witnessCap bounds the witnesses emitted per kernel; drops are
// counted in Analysis.WitnessDropped.
const witnessCap = 64

// gacc is one replayed access attributed to its thread, the working
// unit of the quiet-granule rules and the race-witness search.
type gacc struct {
	bid, tid int
	pc       int
	bar      int
	addr     uint64
	write    bool
	atomic   bool
}

// granuleKey qualifies a granule index by its block for shared space
// (each block has its own window and its own shadow) and leaves global
// granules unqualified.
func granuleKey(space isa.Space, bid int, g uint64) uint64 {
	if space == isa.SpaceShared {
		return uint64(bid)<<32 | (g & 0xFFFFFFFF)
	}
	return g
}

// groupGranules buckets every replayed access of one space by granule
// key, each access repeated for every granule it straddles.
func groupGranules(rr *replayResult, space isa.Space, gran int) map[uint64][]gacc {
	out := map[uint64][]gacc{}
	shared := space == isa.SpaceShared
	for ti := range rr.threads {
		th := &rr.threads[ti]
		for i := range th.acc {
			ac := &th.acc[i]
			if ac.shared() != shared {
				continue
			}
			g0 := ac.addr / uint64(gran)
			g1 := (ac.addr + uint64(ac.size) - 1) / uint64(gran)
			for g := g0; g <= g1; g++ {
				key := granuleKey(space, th.bid, g)
				out[key] = append(out[key], gacc{
					bid: th.bid, tid: th.tid, pc: int(ac.pc), bar: int(ac.bar),
					addr: ac.addr, write: ac.write(), atomic: ac.atomic(),
				})
			}
		}
	}
	for _, accs := range out {
		sortGaccs(accs)
	}
	return out
}

func sortGaccs(accs []gacc) {
	sort.Slice(accs, func(i, j int) bool {
		a, b := accs[i], accs[j]
		if a.bid != b.bid {
			return a.bid < b.bid
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.pc != b.pc {
			return a.pc < b.pc
		}
		return a.addr < b.addr
	})
}

// quietGranule decides whether the granule's exact access multiset can
// produce any dynamic report, under any static-filter subset. Atomics
// are ignored throughout: the RDUs count their checks and return
// before the state machine, and the intra-warp dup scan skips them.
//
//   - all plain accesses from one thread: only the sameThread fast path
//     runs;
//   - no plain writes: reads move between the silent read states;
//   - shared space with block-uniform barrier counts: the shadow resets
//     at every barrier, so each bar-labelled epoch is independent and
//     must be quiet on its own;
//   - a warp-confined epoch (WarpAware) hits the sameWarp suppression;
//     distinct (pc, addr) writes per thread keep the intra-warp WAW
//     dup scan silent.
func quietGranule(accs []gacc, space isa.Space, blockBars, warpAware bool, ws int) bool {
	plain := make([]gacc, 0, len(accs))
	for _, a := range accs {
		if !a.atomic {
			plain = append(plain, a)
		}
	}
	if quietSet(plain, warpAware, ws, space == isa.SpaceGlobal) {
		return true
	}
	if space != isa.SpaceShared || !blockBars {
		return false
	}
	byEpoch := map[int][]gacc{}
	for _, a := range plain {
		byEpoch[a.bar] = append(byEpoch[a.bar], a)
	}
	for _, ep := range byEpoch {
		if !quietSet(ep, warpAware, ws, false) {
			return false
		}
	}
	return true
}

// quietSet is the epoch-level aggregate: one thread, or no writes, or
// (warp-aware) one warp with injective writes. crossBlock demands the
// warp test also pin a single block (global granules are shared across
// blocks; shared keys already are block-local).
func quietSet(accs []gacc, warpAware bool, ws int, crossBlock bool) bool {
	if len(accs) == 0 {
		return true
	}
	oneThread, writes := true, false
	for _, a := range accs {
		if a.bid != accs[0].bid || a.tid != accs[0].tid {
			oneThread = false
		}
		if a.write {
			writes = true
		}
	}
	if oneThread || !writes {
		return true
	}
	if !warpAware {
		return false
	}
	w0 := accs[0].tid / ws
	type wkey struct {
		pc   int
		addr uint64
	}
	seen := map[wkey]int{}
	for _, a := range accs {
		if a.tid/ws != w0 || (crossBlock && a.bid != accs[0].bid) {
			return false
		}
		if !a.write {
			continue
		}
		k := wkey{a.pc, a.addr}
		if t, dup := seen[k]; dup && t != a.tid {
			return false // two lanes of one instruction on one address
		}
		seen[k] = a.tid
	}
	return true
}

// raceWitness searches one granule's plain writes for a pair whose
// dynamic report is guaranteed (see the class constants; the guarantee
// arguments walk the shadow state machine adversarially and are
// granule-level: the unfiltered detector reports at least one race on
// this granule).
func raceWitness(kernel string, space isa.Space, key uint64, accs []gacc,
	blockBars bool, ws, gran int) *Witness {
	var writes []gacc
	for _, a := range accs {
		if a.write && !a.atomic {
			writes = append(writes, a)
		}
	}
	if len(writes) < 2 {
		return nil
	}
	g := key
	if space == isa.SpaceShared {
		g = key & 0xFFFFFFFF
	}
	mk := func(class string, x, y gacc) *Witness {
		return &Witness{
			Kind: WitnessRace, Kernel: kernel, Class: class,
			Space: space.String(), Granule: g,
			PC: x.pc, PC2: y.pc, Addr: x.addr, Addr2: y.addr,
			Block: x.bid, Tid: x.tid, Block2: y.bid, Tid2: y.tid,
			Method: "replay",
			Detail: fmt.Sprintf("granule %d (%d B): writers (b%d,t%d)@pc%d and (b%d,t%d)@pc%d",
				g, gran, x.bid, x.tid, x.pc, y.bid, y.tid, y.pc),
		}
	}
	if space == isa.SpaceGlobal {
		// Class 1: writers from two blocks. Cross-block pairs are immune
		// to every suppression (sameWarp and the sync-ID refresh both
		// need sameBlock), so the second block's first write must meet a
		// foreign claimant in state M.
		for i := 1; i < len(writes); i++ {
			if writes[i].bid != writes[0].bid {
				return mk(ClassCrossBlockWAW, writes[0], writes[i])
			}
		}
	}
	if !blockBars {
		return nil
	}
	// Classes 2/3: two warps writing within one barrier epoch. The later
	// writer either meets the other warp's claimant (report) or a
	// barrier-refreshed entry another same-epoch writer then trips; the
	// claimant cannot leave the granule's write chain within the epoch.
	byEpoch := map[int][]gacc{}
	for _, a := range writes {
		byEpoch[a.bar] = append(byEpoch[a.bar], a)
	}
	epochs := make([]int, 0, len(byEpoch))
	for e := range byEpoch {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)
	class := ClassSharedEpoch
	if space == isa.SpaceGlobal {
		class = ClassSameBlockWAW
	}
	for _, e := range epochs {
		ep := byEpoch[e]
		for i := 1; i < len(ep); i++ {
			if ep[i].bid == ep[0].bid && ep[i].tid/ws != ep[0].tid/ws {
				return mk(class, ep[0], ep[i])
			}
		}
	}
	return nil
}

// verifyRaceWitness independently re-replays the two claimed threads
// and re-derives every claim: both run to completion, both perform the
// claimed plain write on the claimed granule, and the class condition
// holds. Returns false — the witness is dropped — on any mismatch.
func (a *analyzer) verifyRaceWitness(w *Witness, space isa.Space, gran int) bool {
	find := func(bid, tid, pc int, addr uint64) (raccess, int, bool) {
		th, _, _ := a.replayThread(bid, tid, replayPerThreadSteps)
		if !th.ok {
			return raccess{}, 0, false
		}
		for _, ac := range th.acc {
			if int(ac.pc) == pc && ac.addr == addr && ac.write() && !ac.atomic() &&
				(ac.shared() == (space == isa.SpaceShared)) {
				covers := ac.addr/uint64(gran) <= w.Granule &&
					w.Granule <= (ac.addr+uint64(ac.size)-1)/uint64(gran)
				if covers {
					return ac, th.bars, true
				}
			}
		}
		return raccess{}, 0, false
	}
	ac1, _, ok1 := find(w.Block, w.Tid, w.PC, w.Addr)
	ac2, _, ok2 := find(w.Block2, w.Tid2, w.PC2, w.Addr2)
	if !ok1 || !ok2 {
		return false
	}
	switch w.Class {
	case ClassCrossBlockWAW:
		return space == isa.SpaceGlobal && w.Block != w.Block2
	case ClassSameBlockWAW:
		return space == isa.SpaceGlobal && w.Block == w.Block2 &&
			w.Tid/a.conf.WarpSize != w.Tid2/a.conf.WarpSize && ac1.bar == ac2.bar
	case ClassSharedEpoch:
		return space == isa.SpaceShared && w.Block == w.Block2 &&
			w.Tid/a.conf.WarpSize != w.Tid2/a.conf.WarpSize && ac1.bar == ac2.bar
	}
	return false
}

// divergenceWitnesses pairs each barrier-divergence finding with two
// concrete same-block threads that retire different barrier counts —
// the observable fact the lint's abstract argument predicts.
func (a *analyzer) divergenceWitnesses(rr *replayResult, findings []Finding) []Witness {
	var out []Witness
	for _, f := range findings {
		if f.Pass != PassBarrierDivergence {
			continue
		}
		found := false
		for b := 0; b < a.k.GridDim && !found; b++ {
			base := b * a.k.BlockDim
			for t := 1; t < a.k.BlockDim; t++ {
				t0, t1 := &rr.threads[base], &rr.threads[base+t]
				if t0.ok && t1.ok && t0.bars != t1.bars {
					out = append(out, Witness{
						Kind: WitnessDivergence, Kernel: a.k.Name, PC: f.PC,
						Block: b, Tid: t0.tid, Block2: b, Tid2: t1.tid,
						Method: "replay",
						Detail: fmt.Sprintf("threads t%d and t%d of block %d retire %d vs %d barriers",
							t0.tid, t1.tid, b, t0.bars, t1.bars),
					})
					found = true
					break
				}
			}
		}
	}
	return out
}

func (a *analyzer) verifyDivergenceWitness(w *Witness) bool {
	t0, _, _ := a.replayThread(w.Block, w.Tid, replayPerThreadSteps)
	t1, _, _ := a.replayThread(w.Block2, w.Tid2, replayPerThreadSteps)
	return t0.ok && t1.ok && w.Block == w.Block2 && t0.bars != t1.bars
}

// oobWitnesses lifts the replay's concrete shared out-of-bounds
// records into witnesses, one per offending pc.
func (a *analyzer) oobWitnesses(rr *replayResult) []Witness {
	var out []Witness
	seen := map[int]bool{}
	for _, o := range rr.oobs {
		if seen[o.pc] {
			continue
		}
		seen[o.pc] = true
		out = append(out, Witness{
			Kind: WitnessOOB, Kernel: a.k.Name, PC: o.pc,
			Block: o.bid, Tid: o.tid, Addr: o.rel,
			Method: "replay",
			Detail: fmt.Sprintf("thread (b%d,t%d) accesses shared +%d (size %d) beyond the %d-byte window",
				o.bid, o.tid, o.rel, o.size, a.k.SharedBytes),
		})
	}
	return out
}

func (a *analyzer) verifyOOBWitness(w *Witness) bool {
	_, oobs, _ := a.replayThread(w.Block, w.Tid, replayPerThreadSteps)
	for _, o := range oobs {
		if o.pc == w.PC && o.rel == w.Addr {
			return true
		}
	}
	return false
}

// fenceWitnesses turns each fence-misuse finding into a concrete
// store/load thread pair on one global granule. The fixture's replay
// taint-aborts at the election branch (it guards on an atomic result),
// so these witnesses are expression-derived and expression-checked:
// the store address must be a φ-free affine form the checker can
// evaluate for the claimed threads from scratch; the load may walk a
// loop (φ symbols), in which case phiReach searches the loop's
// range∩congruence members for an iteration landing on the store's
// granule.
func (a *analyzer) fenceWitnesses(findings []Finding, gran int) []Witness {
	var out []Witness
	budget := a.conf.MaxFootprintPoints
	if budget <= 0 {
		budget = 1 << 22
	}
	for _, f := range findings {
		if f.Pass != PassFenceMisuse || len(f.Related) != 2 {
			continue
		}
		st, ld := a.sites[f.PC], a.sites[f.Related[1]]
		if st == nil || ld == nil || hasPhi(st.addr) {
			continue
		}
		sg, sok := a.enumerate(st, gran, budget)
		if !sok {
			continue
		}
		bd := int64(a.k.BlockDim)
		emit := func(g uint64, wt, rt int64, raddr uint64) {
			out = append(out, Witness{
				Kind: WitnessFence, Kernel: a.k.Name, Space: isa.SpaceGlobal.String(),
				PC: f.PC, PC2: f.Related[1], Granule: g,
				Addr:  a.evalAddr(st, wt%bd, wt/bd),
				Addr2: raddr,
				Block: int(wt / bd), Tid: int(wt % bd),
				Block2: int(rt / bd), Tid2: int(rt % bd),
				Method: "expr",
				Detail: fmt.Sprintf("store@pc%d by (b%d,t%d) is read unfenced at pc%d by the thread elected at pc%d",
					f.PC, wt/bd, wt%bd, f.Related[1], f.Related[0]),
			})
		}
		if !hasPhi(ld.addr) {
			lg, lok := a.enumerate(ld, gran, budget)
			if !lok {
				continue
			}
			readers := map[uint64]int64{}
			for i := 0; i < len(lg); i += 2 {
				if _, dup := readers[lg[i]]; !dup {
					readers[lg[i]] = int64(lg[i+1])
				}
			}
			for i := 0; i < len(sg); i += 2 {
				g, wt := sg[i], int64(sg[i+1])
				rt, ok := readers[g]
				if !ok || rt == wt {
					continue
				}
				emit(g, wt, rt, a.evalAddr(ld, rt%bd, rt/bd))
				break
			}
			continue
		}
		// Loop reader: any thread may be elected, so pick the first
		// (reader thread, loop iteration) pair covering some stored
		// granule, reader distinct from its writer. Candidate counts
		// are capped; one witness per finding suffices.
		rst := &state{ranges: ld.ranges}
		rtids := a.rangeOf(rst, SymTid).intersect(ival{0, bd - 1})
		rbids := a.rangeOf(rst, SymBid).intersect(ival{0, int64(a.k.GridDim) - 1})
		if rtids.empty() || rbids.empty() {
			continue
		}
		const maxCand = 8
		found := false
		for i := 0; i < len(sg) && i < 2*maxCand && !found; i += 2 {
			g, wt := sg[i], int64(sg[i+1])
			for rb := rbids.lo; rb <= rbids.hi && rb < rbids.lo+maxCand && !found; rb++ {
				for rt := rtids.lo; rt <= rtids.hi && rt < rtids.lo+maxCand && !found; rt++ {
					if rb*bd+rt == wt {
						continue
					}
					raddr, ok := a.phiReach(ld, rt, rb, g, gran, budget)
					if !ok {
						continue
					}
					emit(g, wt, rb*bd+rt, raddr)
					found = true
				}
			}
		}
	}
	return out
}

// verifyFenceWitness re-evaluates both address expressions for the
// claimed threads (re-running the φ search for a loop reader) and
// re-checks the granule overlap, the thread distinction, and the
// fence-free store→election path.
func (a *analyzer) verifyFenceWitness(w *Witness, gran int) bool {
	st, ld := a.sites[w.PC], a.sites[w.PC2]
	if st == nil || ld == nil || hasPhi(st.addr) {
		return false
	}
	if w.Block == w.Block2 && w.Tid == w.Tid2 {
		return false
	}
	sa := a.evalAddr(st, int64(w.Tid), int64(w.Block))
	var la uint64
	if hasPhi(ld.addr) {
		budget := a.conf.MaxFootprintPoints
		if budget <= 0 {
			budget = 1 << 22
		}
		r, ok := a.phiReach(ld, int64(w.Tid2), int64(w.Block2), w.Granule, gran, budget)
		if !ok {
			return false
		}
		la = r
	} else {
		la = a.evalAddr(ld, int64(w.Tid2), int64(w.Block2))
	}
	if sa != w.Addr || la != w.Addr2 {
		return false
	}
	g := uint64(gran)
	if sa/g != w.Granule && (sa+uint64(st.size)-1)/g < w.Granule {
		return false
	}
	overlap := sa/g <= (la+uint64(ld.size)-1)/g && la/g <= (sa+uint64(st.size)-1)/g
	if !overlap {
		return false
	}
	// The finding's middle pc is the election atomic; the misuse claim
	// is a fence-free path from the store to it.
	for _, f := range a.lintFenceMisuse() {
		if f.PC == w.PC && len(f.Related) == 2 && f.Related[1] == w.PC2 {
			return true
		}
	}
	return false
}

func hasPhi(e Expr) bool {
	if e.top {
		return true
	}
	for _, t := range e.terms {
		if t.sym >= symFirstPhi {
			return true
		}
	}
	return false
}

// evalAddr concretely evaluates a φ-free site address for one thread,
// with the executor's wrapping uint64 arithmetic.
func (a *analyzer) evalAddr(s *siteAcc, tid, bid int64) uint64 {
	ws := int64(a.conf.WarpSize)
	v := uint64(s.addr.c)
	for _, t := range s.addr.terms {
		switch t.sym {
		case SymTid:
			v += uint64(t.coef) * uint64(tid)
		case SymBid:
			v += uint64(t.coef) * uint64(bid)
		case SymLane:
			v += uint64(t.coef) * uint64(tid%ws)
		case SymWarp:
			v += uint64(t.coef) * uint64(tid/ws)
		}
	}
	return v
}

// phiReach searches for a concrete address of site s, executed by
// thread (tid, bid), that falls within global granule targetG — the φ
// symbols in the address iterate over their range∩congruence members
// exactly as enumerate does, and the first hit (deterministic order)
// is returned. The thread must satisfy the site's path conditions.
func (a *analyzer) phiReach(s *siteAcc, tid, bid int64, targetG uint64, gran int, budget int64) (uint64, bool) {
	if s.addr.top || s.size <= 0 {
		return 0, false
	}
	st := &state{ranges: s.ranges}
	ws := int64(a.conf.WarpSize)
	if !a.rangeOf(st, SymTid).contains(tid) || !a.rangeOf(st, SymBid).contains(bid) ||
		!a.rangeOf(st, SymLane).contains(tid%ws) || !a.rangeOf(st, SymWarp).contains(tid/ws) {
		return 0, false
	}
	base := uint64(s.addr.c) +
		uint64(s.addr.termCoef(SymTid))*uint64(tid) +
		uint64(s.addr.termCoef(SymBid))*uint64(bid) +
		uint64(s.addr.termCoef(SymLane))*uint64(tid%ws) +
		uint64(s.addr.termCoef(SymWarp))*uint64(tid/ws)
	var syms []symID
	var starts, steps, counts []int64
	points := int64(1)
	for _, t := range s.addr.terms {
		switch t.sym {
		case SymTid, SymBid, SymLane, SymWarp:
		default:
			r := a.rangeOf(st, t.sym)
			if !r.bounded() || r.empty() {
				return 0, false
			}
			start, step, count := congStep(r, a.congOf(t.sym))
			if count <= 0 || points > budget/count {
				return 0, false
			}
			points *= count
			syms = append(syms, t.sym)
			starts = append(starts, start)
			steps = append(steps, step)
			counts = append(counts, count)
		}
	}
	gsize := uint64(gran)
	span := uint64(s.size-1) / gsize
	var walk func(addr uint64, depth int) (uint64, bool)
	walk = func(addr uint64, depth int) (uint64, bool) {
		if depth == len(syms) {
			g0 := addr / gsize
			if targetG >= g0 && targetG <= g0+span {
				return addr, true
			}
			return 0, false
		}
		c := uint64(s.addr.termCoef(syms[depth]))
		v := starts[depth]
		for i := int64(0); i < counts[depth]; i++ {
			if r, ok := walk(addr+c*uint64(v), depth+1); ok {
				return r, ok
			}
			v += steps[depth]
		}
		return 0, false
	}
	return walk(base, 0)
}
