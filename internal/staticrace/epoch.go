package staticrace

import "haccrg/internal/isa"

// epochInfo answers "can these two PCs execute within the same barrier
// epoch of one block?" for the shared-memory pairwise prover. The
// shared-memory RDU resets its shadow state at every block-wide
// barrier, so two sites that provably never share an epoch can never
// be each other's claimant/event pair.
//
// The analysis is deliberately conservative. It is only meaningful
// when every barrier is *uniform*: unpredicated, and not inside the
// span of any predicated branch (so no thread can skip it or execute
// it divergently). Under uniformity every thread of a block executes
// the same sequence of barrier instances, so the i-th dynamic barrier
// event corresponds to one unique program point, and an access's
// epoch is identified by the last barrier PC it passed. Each epoch
// therefore has a unique *source* — the entry PC or the PC after a
// BAR — and two sites may share an epoch only when some common source
// reaches both without crossing another BAR. Without uniformity (a
// barrier inside a loop or a predicated region) maySameEpoch is
// always true.
type epochInfo struct {
	uniform bool
	srcs    []int
	reach   [][]bool // per source: pc reachable barrier-free
}

func buildEpochInfo(prog *isa.Program) *epochInfo {
	n := len(prog.Code)
	e := &epochInfo{uniform: true}
	for pc := 0; pc < n; pc++ {
		in := &prog.Code[pc]
		if in.Op == isa.OpBar && in.Pred != isa.NoPred {
			e.uniform = false
		}
		if in.Op == isa.OpBra && in.Pred != isa.NoPred {
			// Forward branch: the divergent region is (pc, Tgt) — the
			// target is the reconvergence point, executed by everyone.
			// Backward branch (loop): every body pc [Tgt, pc] runs a
			// thread-dependent number of times, endpoints included.
			lo, hi := pc+1, in.Tgt-1
			if in.Tgt <= pc {
				lo, hi = in.Tgt, pc
			}
			for q := lo; q <= hi && q < n; q++ {
				if q >= 0 && prog.Code[q].Op == isa.OpBar {
					e.uniform = false
				}
			}
		}
	}
	if !e.uniform {
		return e
	}
	e.srcs = append(e.srcs, 0)
	for pc := 0; pc < n; pc++ {
		if prog.Code[pc].Op == isa.OpBar && pc+1 < n {
			e.srcs = append(e.srcs, pc+1)
		}
	}
	for _, s := range e.srcs {
		r := make([]bool, n)
		var stack []int
		push := func(pc int) {
			if pc >= 0 && pc < n && !r[pc] {
				r[pc] = true
				stack = append(stack, pc)
			}
		}
		push(s)
		for len(stack) > 0 {
			pc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			in := &prog.Code[pc]
			switch {
			case in.Op == isa.OpBar:
				// Crossing a barrier leaves the epoch; the BAR itself
				// performs no memory access.
			case in.Op == isa.OpBra && in.Pred == isa.NoPred:
				push(in.Tgt)
			case in.Op == isa.OpBra:
				push(in.Tgt)
				push(pc + 1)
			case in.Op == isa.OpExit && in.Pred == isa.NoPred:
				// Retired.
			case in.Op == isa.OpExit:
				push(pc + 1)
			default:
				push(pc + 1)
			}
		}
		e.reach = append(e.reach, r)
	}
	return e
}

// maySameEpoch reports whether instances of the two PCs can execute
// within the same barrier epoch of one block. Conservatively true
// whenever barrier uniformity does not hold.
func (e *epochInfo) maySameEpoch(p1, p2 int) bool {
	if !e.uniform {
		return true
	}
	for i := range e.srcs {
		if e.reach[i][p1] && e.reach[i][p2] {
			return true
		}
	}
	return false
}
