package staticrace_test

import (
	"testing"

	"haccrg/internal/staticrace"
)

// FuzzCFGBuilder drives the CFG builder and the full analyzer with
// randomized builder-generated programs (the same decoder the
// soundness sweep uses, so every input is a structurally valid
// program). Invariants: BuildCFG partitions the program — every
// instruction lands in exactly one basic block — and Analyze neither
// panics nor errors on a program the ISA builder accepted.
func FuzzCFGBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{9, 1, 10, 2, 14, 0, 11, 0, 11, 0, 12, 0})
	f.Add([]byte{10, 200, 15, 3, 16, 7, 11, 1, 6, 40, 9, 0, 14, 9, 11, 5})
	f.Add([]byte{0, 17, 2, 252, 14, 4, 5, 9, 7, 31, 8, 64, 13, 0, 15, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		k := genKernel("fuzz", data)
		if k == nil {
			return
		}
		g, err := staticrace.BuildCFG(k.Prog)
		if err != nil {
			t.Fatalf("BuildCFG rejected a builder-accepted program: %v\n%s",
				err, k.Prog.Disassemble())
		}
		covered := make([]int, len(k.Prog.Code))
		for _, b := range g.Blocks {
			if b.Start >= b.End {
				t.Fatalf("empty block %d [%d,%d)", b.Index, b.Start, b.End)
			}
			for pc := b.Start; pc < b.End; pc++ {
				covered[pc]++
			}
		}
		for pc, n := range covered {
			if n != 1 {
				t.Fatalf("pc %d in %d blocks\n%s", pc, n, k.Prog.Disassemble())
			}
		}
		res, err := staticrace.Analyze(k, testConf())
		if err != nil {
			t.Fatalf("Analyze failed: %v\n%s", err, k.Prog.Disassemble())
		}
		for _, fd := range res.Findings {
			if fd.PC < 0 || fd.PC >= len(k.Prog.Code) {
				t.Fatalf("finding pc %d out of range [%s] %s", fd.PC, fd.Pass, fd.Msg)
			}
		}
	})
}
