package staticrace

import (
	"fmt"

	"haccrg/internal/isa"
)

// Lint pass names.
const (
	PassBarrierDivergence = "barrier-divergence"
	PassUninitRead        = "uninit-read"
	PassSharedOOB         = "shared-oob"
	PassFenceMisuse       = "fence-misuse"
)

// lintBarrierDivergence flags BAR instructions inside the divergent
// region of a predicated branch whose condition is definitely
// tid-dependent with both outcomes possible: some threads of a block
// then reach the barrier while others bypass it, which the block-wide
// barrier semantics turn into a deadlock or miscount. Only definite
// conditions fire — an unknown guard stays silent.
func (a *analyzer) lintBarrierDivergence() []Finding {
	var out []Finding
	for pc, g := range a.brPred {
		in := &a.prog.Code[pc]
		if in.Op != isa.OpBra || in.Pred == isa.NoPred {
			continue
		}
		if !a.divergentGuard(g, pc) {
			continue
		}
		lo, hi := pc+1, in.Rcv
		if in.Tgt < lo {
			lo = in.Tgt
		}
		for q := lo; q < hi && q < len(a.prog.Code); q++ {
			if a.prog.Code[q].Op != isa.OpBar {
				continue
			}
			b := a.cfg.BlockOf(q)
			if b < 0 || a.reached == nil || b >= len(a.reached) || !a.reached[b] {
				continue
			}
			out = append(out, Finding{
				Pass:    PassBarrierDivergence,
				PC:      q,
				Related: []int{pc},
				Msg: fmt.Sprintf("barrier executes under tid-dependent predicate p%d "+
					"(branch at pc %d); threads that skip the region never arrive", in.Pred, pc),
			})
		}
	}
	return out
}

// divergentGuard reports whether a recorded branch guard is definitely
// tid-dependent with both outcomes possible among the launched
// threads (interval of the SETP difference straddles the comparison).
func (a *analyzer) divergentGuard(g predval, pc int) bool {
	if g.known || !g.hasCond || !a.tidDep(g.diff) {
		return false
	}
	b := a.cfg.BlockOf(pc)
	if b < 0 || a.in[b] == nil {
		return false
	}
	iv := a.intervalOf(g.diff, a.in[b])
	return iv.bounded() && condEval(iv, g.cmp) == 0
}

// lintUninit flags reads of general or predicate registers that are
// assigned on *no* path from entry (a may-assigned forward dataflow).
// Register r0 is exempt: the builder's Ldp idiom deliberately reads it
// as a conventional zero register.
func (a *analyzer) lintUninit() []Finding {
	type mask struct {
		regs  uint32
		preds uint8
	}
	n := len(a.cfg.Blocks)
	in := make([]mask, n)
	have := make([]bool, n)
	have[0] = true
	apply := func(m mask, b int) mask {
		blk := a.cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			ins := &a.prog.Code[pc]
			dr, dp := writesOf(ins)
			if dr >= 0 {
				m.regs |= 1 << uint(dr)
			}
			if dp >= 0 {
				m.preds |= 1 << uint(dp)
			}
		}
		return m
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < n; b++ {
			if !have[b] {
				continue
			}
			out := apply(in[b], b)
			for _, s := range a.cfg.Blocks[b].Succs {
				nm := out
				if have[s] {
					nm.regs |= in[s].regs
					nm.preds |= in[s].preds
				}
				if !have[s] || nm != in[s] {
					in[s] = nm
					have[s] = true
					changed = true
				}
			}
		}
	}
	var out []Finding
	seen := map[[2]int]bool{} // (pc, operand) dedup
	for b := 0; b < n; b++ {
		if !have[b] {
			continue
		}
		m := in[b]
		blk := a.cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			ins := &a.prog.Code[pc]
			regs, preds := readsOf(ins)
			for _, r := range regs {
				if r == 0 || m.regs&(1<<uint(r)) != 0 || seen[[2]int{pc, int(r)}] {
					continue
				}
				seen[[2]int{pc, int(r)}] = true
				out = append(out, Finding{
					Pass: PassUninitRead, PC: pc,
					Msg: fmt.Sprintf("r%d is read but assigned on no path from entry", r),
				})
			}
			for _, p := range preds {
				key := [2]int{pc, 100 + int(p)}
				if m.preds&(1<<uint(p)) != 0 || seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, Finding{
					Pass: PassUninitRead, PC: pc,
					Msg: fmt.Sprintf("p%d is read but assigned on no path from entry", p),
				})
			}
			dr, dp := writesOf(ins)
			if dr >= 0 {
				m.regs |= 1 << uint(dr)
			}
			if dp >= 0 {
				m.preds |= 1 << uint(dp)
			}
		}
	}
	return out
}

// readsOf mirrors the executor's operand reads exactly (aluLane and
// the memory paths): which registers and predicates the instruction
// consumes.
func readsOf(in *isa.Instr) (regs []isa.Reg, preds []isa.Pred) {
	if in.Pred != isa.NoPred {
		preds = append(preds, in.Pred)
	}
	b := func() {
		if !in.UseImm {
			regs = append(regs, in.SrcB)
		}
	}
	switch in.Op {
	case isa.OpNop, isa.OpSreg, isa.OpBar, isa.OpMembar, isa.OpRelMark, isa.OpExit:
	case isa.OpMov:
		if !in.UseImm {
			regs = append(regs, in.SrcA)
		}
	case isa.OpSelp:
		preds = append(preds, in.PD)
		regs = append(regs, in.SrcA, in.SrcC)
	case isa.OpNot, isa.OpFSqrt, isa.OpFExp, isa.OpFLog, isa.OpFSin,
		isa.OpFCos, isa.OpFAbs, isa.OpItoF, isa.OpFtoI, isa.OpAcqMark:
		regs = append(regs, in.SrcA)
	case isa.OpMad:
		regs = append(regs, in.SrcA, in.SrcC)
		b()
	case isa.OpSetp, isa.OpFSetp:
		regs = append(regs, in.SrcA)
		b()
	case isa.OpBra:
	case isa.OpLd:
		regs = append(regs, in.SrcA)
	case isa.OpSt:
		regs = append(regs, in.SrcA, in.SrcB)
	case isa.OpAtom:
		regs = append(regs, in.SrcA, in.SrcB)
		if in.AOp == isa.AtomCAS {
			regs = append(regs, in.SrcC)
		}
	default:
		regs = append(regs, in.SrcA)
		b()
	}
	return regs, preds
}

// writesOf returns the destination register and predicate (-1 = none).
func writesOf(in *isa.Instr) (reg, pred int) {
	reg, pred = -1, -1
	switch in.Op {
	case isa.OpSetp, isa.OpFSetp:
		pred = int(in.PD)
	case isa.OpNop, isa.OpBra, isa.OpExit, isa.OpBar, isa.OpMembar,
		isa.OpAcqMark, isa.OpRelMark, isa.OpSt:
	default:
		reg = int(in.Dst)
	}
	return reg, pred
}

// lintSharedOOB flags shared-memory sites whose address interval
// provably escapes [0, SharedBytes). It only fires from states with no
// unrefinable path condition (approx) — the claim is "some launched
// thread accesses out of bounds", which a runtime launch would turn
// into a hard failure.
func (a *analyzer) lintSharedOOB() []Finding {
	var out []Finding
	limit := int64(a.k.SharedBytes)
	for _, s := range a.sites {
		if s.space != isa.SpaceShared || s.dead || s.approx || s.addr.top {
			continue
		}
		st := &state{ranges: s.ranges}
		iv := a.intervalOf(s.addr, st)
		if !iv.bounded() {
			continue
		}
		if iv.lo < 0 || iv.hi+int64(s.size) > limit {
			out = append(out, Finding{
				Pass: PassSharedOOB, PC: s.pc,
				Msg: fmt.Sprintf("shared access reaches [%d, %d) but the kernel declares %d shared bytes",
					iv.lo, iv.hi+int64(s.size), limit),
			})
		}
	}
	return out
}

// lintFenceMisuse detects the unfenced election idiom: a global store,
// an AtomInc election whose result guards an "I am last" region, and a
// global load in that region overlapping the store's footprint across
// threads — with no MEMBAR on some path from the store to the atomic.
// Without the fence the elected thread can observe partial updates
// (the defect the paper's fence-ID validation catches dynamically).
func (a *analyzer) lintFenceMisuse() []Finding {
	var out []Finding
	gran := a.conf.GlobalGranularity
	if gran <= 0 {
		gran = 4
	}
	budget := a.conf.MaxFootprintPoints
	if budget <= 0 {
		budget = 1 << 22
	}
	owners := func(s *siteAcc) map[uint64]int64 {
		gr, ok := a.enumerate(s, gran, budget)
		if !ok {
			return nil
		}
		m := make(map[uint64]int64, len(gr)/2)
		for i := 0; i < len(gr); i += 2 {
			g, t := gr[i], int64(gr[i+1])
			if o, seen := m[g]; seen && o != t {
				m[g] = -2
			} else if !seen {
				m[g] = t
			}
		}
		return m
	}
	for _, atom := range a.sites {
		in := instrAt(a.prog, atom.pc)
		if atom.dead || in == nil || in.Op != isa.OpAtom ||
			atom.space != isa.SpaceGlobal || in.AOp != isa.AtomInc {
			continue
		}
		_, region := a.electRegion(atom.pc, in.Dst)
		if region.empty() {
			continue
		}
		for _, ld := range a.sites {
			if ld.dead || ld.space != isa.SpaceGlobal || ld.write || ld.atomic {
				continue
			}
			if int64(ld.pc) < region.lo || int64(ld.pc) > region.hi {
				continue
			}
			ldOwn := owners(ld)
			if ldOwn == nil {
				continue
			}
			for _, st := range a.sites {
				if st.dead || !st.write || st.space != isa.SpaceGlobal || st.pc >= atom.pc {
					continue
				}
				stOwn := owners(st)
				if stOwn == nil || !crossThreadOverlap(stOwn, ldOwn) {
					continue
				}
				if !a.fenceFreePath(st.pc, atom.pc) {
					continue
				}
				out = append(out, Finding{
					Pass: PassFenceMisuse, PC: st.pc,
					Related: []int{atom.pc, ld.pc},
					Msg: fmt.Sprintf("global store is read back at pc %d by the thread elected at pc %d, "+
						"but no MEMBAR orders the store before the election", ld.pc, atom.pc),
				})
			}
		}
	}
	return out
}

func instrAt(p *isa.Program, pc int) *isa.Instr {
	if pc < 0 || pc >= len(p.Code) {
		return nil
	}
	return &p.Code[pc]
}

// electRegion resolves atomDst → SETP → predicated branch and returns
// the branch pc plus the guarded region [min(pc+1,Tgt), Rcv).
func (a *analyzer) electRegion(atomPC int, dst isa.Reg) (int, ival) {
	none := ival{1, 0}
	blk := a.cfg.Blocks[a.cfg.BlockOf(atomPC)]
	for pc := atomPC + 1; pc < blk.End; pc++ {
		in := &a.prog.Code[pc]
		if in.Op == isa.OpSetp && (in.SrcA == dst || (!in.UseImm && in.SrcB == dst)) {
			pd := in.PD
			// The guarded branch follows; stop if the predicate or the
			// atomic's result is redefined first.
			for q := pc + 1; q < len(a.prog.Code); q++ {
				br := &a.prog.Code[q]
				if br.Op == isa.OpBra && br.Pred == pd {
					lo := int64(q + 1)
					if int64(br.Tgt) < lo {
						lo = int64(br.Tgt)
					}
					return q, ival{lo, int64(br.Rcv) - 1}
				}
				r, p := writesOf(br)
				if p == int(pd) || r == int(dst) {
					break
				}
			}
		}
		if r, _ := writesOf(in); r == int(dst) {
			break
		}
	}
	return -1, none
}

// crossThreadOverlap reports whether some granule is written and read
// by two distinct threads.
func crossThreadOverlap(writers, readers map[uint64]int64) bool {
	for g, w := range writers {
		r, ok := readers[g]
		if !ok {
			continue
		}
		if w == -2 || r == -2 || w != r {
			return true
		}
	}
	return false
}

// fenceFreePath reports whether execution can flow from the store at
// pc `from` to the atomic at pc `to` without crossing a MEMBAR.
func (a *analyzer) fenceFreePath(from, to int) bool {
	type pos struct{ pc int }
	seen := make([]bool, len(a.prog.Code))
	stack := []pos{{from + 1}}
	for len(stack) > 0 {
		p := stack[len(stack)-1].pc
		stack = stack[:len(stack)-1]
		for pc := p; pc >= 0 && pc < len(a.prog.Code); {
			if seen[pc] {
				break
			}
			seen[pc] = true
			if pc == to {
				return true
			}
			in := &a.prog.Code[pc]
			if in.Op == isa.OpMembar {
				break // fenced along this path
			}
			if in.Op == isa.OpBra {
				if !seen[in.Tgt] {
					stack = append(stack, pos{in.Tgt})
				}
				if in.Pred == isa.NoPred {
					break
				}
				pc++ // fall-through for guard-false lanes
				continue
			}
			if in.Op == isa.OpExit && in.Pred == isa.NoPred {
				break
			}
			pc++
		}
	}
	return false
}
