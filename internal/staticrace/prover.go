package staticrace

import (
	"math/bits"

	"haccrg/internal/isa"
)

// SiteClass is the race-freedom verdict for one memory site.
type SiteClass uint8

const (
	// ClassUnknown: nothing proven; the site must stay on the dynamic
	// detector's hot path.
	ClassUnknown SiteClass = iota
	// ClassPrivate: every granule the site touches is touched by at
	// most one thread over the whole kernel.
	ClassPrivate
	// ClassReadShared: every granule the site touches is never written
	// by any site.
	ClassReadShared
	// ClassRaceFree: a mix — each granule is either single-thread,
	// never written, or discharged by the pairwise epoch/warp rules.
	ClassRaceFree
	// ClassQuiet: proven race-free by the concrete replay (every
	// granule the site touches is quiet in the exact execution).
	ClassQuiet
	// ClassRacy: a verified concrete race witness touches one of the
	// site's granules; the site must stay on the hot path.
	ClassRacy
)

func (c SiteClass) String() string {
	switch c {
	case ClassPrivate:
		return "private"
	case ClassReadShared:
		return "read-shared"
	case ClassRaceFree:
		return "race-free"
	case ClassQuiet:
		return "quiet"
	case ClassRacy:
		return "provable-race"
	}
	return "unknown"
}

// filterable reports whether the dynamic detector may skip checks for
// a site of this class.
func (c SiteClass) filterable() bool {
	return c != ClassUnknown && c != ClassRacy
}

// gInfo is the per-granule ownership summary accumulated across every
// site of a memory space.
type gInfo struct {
	owner   int64 // global thread id; -1 none yet, -2 multiple
	written bool
}

// span is one site's thread footprint on one granule: the bounding box
// of the (block, block-local tid) pairs that can touch it. The
// pairwise prover reasons about spans instead of exact thread sets —
// a bounding box inside one warp proves "all accessors share a warp"
// without storing the set.
type span struct {
	site       *siteAcc
	minT, maxT int64
	minB, maxB int64
}

func (sp *span) add(b, t int64) {
	if t < sp.minT {
		sp.minT = t
	}
	if t > sp.maxT {
		sp.maxT = t
	}
	if b < sp.minB {
		sp.minB = b
	}
	if b > sp.maxB {
		sp.maxB = b
	}
}

func (sp *span) oneThread() bool { return sp.minT == sp.maxT && sp.minB == sp.maxB }

// Caps for the pairwise refinement working set.
const maxPairSpans = 1 << 18

// proveSpace classifies every live site of one memory space.
//
// Base criterion (sync-insensitive, granule-level): a granule is
// race-free iff it is never written, or touched by exactly one
// distinct thread over the whole kernel. A site may be filtered iff
// every granule it can touch is race-free. Soundness against the
// dynamic RDU:
//
//   - single-thread granules only ever hit the sameThread fast path of
//     the happens-before state machine, which never reports;
//   - never-written granules keep reads in the read states, which
//     never report either;
//   - the intra-warp WAW check needs two lanes on one address, which
//     makes the granule multi-thread and hence the site unfilterable.
//
// Granules that fail the base criterion get a second chance from the
// pairwise rules (pairSafe): per conflicting granule, every pair of
// sites touching it must be individually silent — atomics are
// invisible to the state machine, read/read pairs never report,
// shared-space sites confined to disjoint barrier epochs never meet in
// the shadow (it resets at every barrier), and warp-confined conflicts
// are the lockstep sharing the WarpAware detector deliberately
// ignores.
//
// Atomics count as writes. Unknown footprints poison conservatively:
// an unknown *write* poisons the whole space (it could write any
// granule); an unknown *read* restricts race-freedom to never-written
// granules (it could observe any written granule, and filtering the
// writer would change what the unfiltered reader reports). Shared
// sites whose footprint blows the point budget fall back to an
// analytic strided form (strideOf) before poisoning.
func (a *analyzer) proveSpace(space isa.Space, gran int, out map[int]*SiteInfo) {
	var live []*siteAcc
	unknownWrite, unknownRead := false, false
	for _, s := range a.sites {
		if s.space != space || s.dead {
			continue
		}
		live = append(live, s)
	}
	if gran <= 0 {
		gran = 1
	}
	// Shared shadow windows are slot-relative; if the block's window is
	// not granule-aligned, one granule can span two co-resident blocks'
	// windows and block-relative footprints no longer map 1:1 onto
	// runtime granules. Poison the space.
	poisoned := space == isa.SpaceShared && a.k.SharedBytes%gran != 0
	type fp struct {
		site     *siteAcc
		granules []uint64
	}
	foots := make([]fp, 0, len(live))
	var strided []*strideFoot
	var total int64
	budget := a.conf.MaxFootprintPoints
	if budget <= 0 {
		budget = 1 << 22
	}
	for _, s := range live {
		var gr []uint64
		ok := !poisoned
		if ok {
			gr, ok = a.enumerate(s, gran, budget)
		}
		if ok {
			total += int64(len(gr))
			if total > budget {
				ok = false
			}
		}
		if !ok {
			// Analytic fallback: a pure tid-strided shared site has a
			// closed-form footprint no budget can defeat.
			if space == isa.SpaceShared && !poisoned {
				if sf, sok := a.strideOf(s, gran); sok {
					strided = append(strided, sf)
					continue
				}
			}
			if s.write || s.atomic {
				unknownWrite = true
			} else {
				unknownRead = true
			}
			continue
		}
		foots = append(foots, fp{site: s, granules: gr})
	}
	// Ownership map over (granule, thread) pairs from the known sites.
	owners := map[uint64]*gInfo{}
	for _, f := range foots {
		w := f.site.write || f.site.atomic
		for i := 0; i < len(f.granules); i += 2 {
			g, tid := f.granules[i], int64(f.granules[i+1])
			e := owners[g]
			if e == nil {
				e = &gInfo{owner: tid}
				owners[g] = e
			} else if e.owner != tid {
				e.owner = -2
			}
			if w {
				e.written = true
			}
		}
	}
	// Strided sites interleave with the enumerated granules: merge their
	// touches into the ownership map (forward) and record conflicts the
	// enumerated sites impose on them (reverse). The reverse flags read
	// the pre-merge state so strided-vs-strided interactions are settled
	// only by the progression rules below.
	ws := int64(a.conf.WarpSize)
	stridedTouched := map[uint64]bool{}
	for key, e := range owners {
		b, g := int64(0), int64(key)
		if space == isa.SpaceShared {
			b, g = int64(key>>32), int64(key&0xFFFFFFFF)
		}
		preOwner, preWritten := e.owner, e.written
		for _, sf := range strided {
			t := sf.touchTid(b, g, ws)
			if t < 0 {
				continue
			}
			stridedTouched[key] = true
			gtid := b*int64(a.k.BlockDim) + t
			if preOwner != gtid {
				sf.multi = true
			}
			if preWritten {
				sf.otherWrite = true
			}
			if e.owner != gtid {
				e.owner = -2
			}
			if sf.s.write || sf.s.atomic {
				e.written = true
			}
		}
	}
	// Strided-vs-strided: two progressions are jointly single-owner iff
	// identical (same granule → same thread); otherwise any overlap is a
	// conservative conflict.
	for i, x := range strided {
		for j, y := range strided {
			if i == j || !strideOverlap(x, y) {
				continue
			}
			if x.cG != y.cG || x.stepG != y.stepG {
				x.multi = true
			}
			if y.s.write || y.s.atomic {
				x.otherWrite = true
			}
		}
	}

	// Pairwise refinement over the conflicting granules. Disabled when
	// the program uses critical-section markers (the lockset machinery
	// has its own report paths) or when the working set blows the cap.
	safeG := map[uint64]bool{}
	if !unknownWrite && !unknownRead && !a.progAcqMark() {
		spans := map[uint64][]*span{}
		overflow := false
		var nSpans int64
		for _, f := range foots {
			for i := 0; i < len(f.granules); i += 2 {
				key := f.granules[i]
				e := owners[key]
				if e.owner != -2 || !e.written || stridedTouched[key] {
					continue
				}
				gtid := int64(f.granules[i+1])
				b, t := gtid/int64(a.k.BlockDim), gtid%int64(a.k.BlockDim)
				list := spans[key]
				var sp *span
				for _, cand := range list {
					if cand.site == f.site {
						sp = cand
						break
					}
				}
				if sp == nil {
					sp = &span{site: f.site, minT: t, maxT: t, minB: b, maxB: b}
					spans[key] = append(spans[key], sp)
					nSpans++
					if nSpans > maxPairSpans {
						overflow = true
					}
				} else {
					sp.add(b, t)
				}
			}
			if overflow {
				break
			}
		}
		if !overflow {
			for key, list := range spans {
				safe := true
				for i := 0; i < len(list) && safe; i++ {
					for j := i; j < len(list); j++ {
						if !a.pairSafe(space, list[i], list[j]) {
							safe = false
							break
						}
					}
				}
				if safe {
					safeG[key] = true
				}
			}
		}
	}

	for _, f := range foots {
		s := f.site
		info := out[s.pc]
		single, unwritten := true, true
		for i := 0; i < len(f.granules); i += 2 {
			e := owners[f.granules[i]]
			if e.owner == -2 {
				single = false
			}
			if e.written {
				unwritten = false
			}
		}
		switch {
		case unknownWrite:
			info.Class = ClassUnknown
		case unknownRead && !unwritten:
			// A statically-opaque read may alias this written granule.
			info.Class = ClassUnknown
		case single && unwritten:
			if len(f.granules) == 0 {
				info.Class = ClassPrivate
			} else if s.write || s.atomic {
				info.Class = ClassPrivate
			} else {
				info.Class = ClassReadShared
			}
		case single:
			info.Class = ClassPrivate
		case unwritten:
			info.Class = ClassReadShared
		default:
			// Mixed: every granule individually race-free?
			ok := true
			for i := 0; i < len(f.granules); i += 2 {
				e := owners[f.granules[i]]
				if e.owner == -2 && e.written && !safeG[f.granules[i]] {
					ok = false
					break
				}
			}
			if ok {
				info.Class = ClassRaceFree
			} else {
				info.Class = ClassUnknown
			}
		}
		info.Granules = len(f.granules) / 2
	}

	for _, sf := range strided {
		info := out[sf.s.pc]
		selfW := sf.s.write || sf.s.atomic
		unwritten := !selfW && !sf.otherWrite
		switch {
		case unknownWrite:
			info.Class = ClassUnknown
		case unknownRead && !unwritten:
			info.Class = ClassUnknown
		case !sf.multi:
			info.Class = ClassPrivate
		case unwritten:
			info.Class = ClassReadShared
		default:
			info.Class = ClassUnknown
		}
		info.Granules = int(sf.tids.hi - sf.tids.lo + 1)
	}
}

// pairSafe decides whether the (claimant-site, event-site) pair can
// produce a report on a granule both touch. All rules are symmetric,
// so one call settles both orders:
//
//  1. atomic sites never enter the state machine (checks count, then
//     continue) and never leave claimant state;
//  2. read/read pairs only move between the read states, which never
//     report;
//  3. a pair confined to one identical thread hits the sameThread
//     suppression;
//  4. shared-space sites that provably never share a barrier epoch
//     never meet in the shadow — it resets at every barrier;
//  5. with WarpAware, a pair whose spans sit inside one common warp
//     (one common block for global) hits the sameWarp suppression;
//     a self-paired write additionally needs per-warp address
//     injectivity so the intra-warp WAW dup scan stays silent.
func (a *analyzer) pairSafe(space isa.Space, x, y *span) bool {
	if x.site.atomic || y.site.atomic {
		return true
	}
	if !x.site.write && !y.site.write {
		return true
	}
	if x.oneThread() && y.oneThread() && x.minT == y.minT && x.minB == y.minB {
		return true
	}
	if space == isa.SpaceShared && !a.epochOf().maySameEpoch(x.site.pc, y.site.pc) {
		return true
	}
	if a.conf.WarpAware {
		ws := int64(a.conf.WarpSize)
		oneWarp := x.minT/ws == x.maxT/ws && y.minT/ws == y.maxT/ws && x.minT/ws == y.minT/ws
		oneBlock := space == isa.SpaceShared ||
			(x.minB == x.maxB && y.minB == y.maxB && x.minB == y.minB)
		if oneWarp && oneBlock {
			if x != y {
				return true
			}
			return !x.site.write || a.warpInjective(x.site)
		}
	}
	return false
}

// warpInjective reports whether, within any one warp, no two distinct
// threads of the warp can write the same byte address at this site —
// the condition under which the intra-warp WAW dup scan cannot fire.
// Within one warp the warp index is constant and lane = tid − ws·warp,
// so an affine address over the base coordinates collapses to
// c′ + (kTid+kLane)·tid, injective iff the coefficient is nonzero (and
// far from a 2^64 torsion point; the trailing-zero guard keeps the
// wrapped products distinct for any realistic block size).
func (a *analyzer) warpInjective(s *siteAcc) bool {
	if !s.write {
		return true
	}
	var kT, kL int64
	for _, t := range s.addr.terms {
		switch t.sym {
		case SymTid:
			kT = t.coef
		case SymLane:
			kL = t.coef
		case SymBid, SymWarp:
			// Constant within one warp.
		default:
			return false // φ symbol: one thread writes many addresses
		}
	}
	k, ok := addOvf(kT, kL)
	if !ok || k == 0 {
		return false
	}
	if k < 0 {
		k = -k
	}
	return bits.TrailingZeros64(uint64(k)) < 40
}

// epochOf lazily builds the barrier-epoch reachability summary.
func (a *analyzer) epochOf() *epochInfo {
	if a.epochs == nil {
		a.epochs = buildEpochInfo(a.prog)
	}
	return a.epochs
}

// strideFoot is the analytic footprint of a pure tid-strided shared
// site: addr = c + kT·tid with granule-aligned stride and no granule
// straddling, so thread t owns exactly granule cG + stepG·t. The
// progression is strictly monotone in t — injective — which makes the
// site single-owner against itself with no enumeration at all.
type strideFoot struct {
	s            *siteAcc
	cG, stepG    int64
	tids, bids   ival
	lanes, warps ival
	multi        bool // some granule reachable by a different thread
	otherWrite   bool // some overlapping site writes
}

// strideOf recognizes the analytic form. Shared space only: the
// block-qualified granule keys make every block's progression
// independent, which a global-space granule shared across blocks would
// break (every block's thread t would collide on one granule).
func (a *analyzer) strideOf(s *siteAcc, gran int) (*strideFoot, bool) {
	if s.addr.top || s.size <= 0 {
		return nil, false
	}
	if len(s.addr.terms) != 1 || s.addr.terms[0].sym != SymTid {
		return nil, false
	}
	kT, c, g := s.addr.terms[0].coef, s.addr.c, int64(gran)
	if kT <= 0 || c < 0 || kT >= 1<<32 || c >= 1<<32 {
		return nil, false
	}
	if kT%g != 0 || c%g+int64(s.size) > g {
		return nil, false
	}
	st := &state{ranges: s.ranges}
	tids := a.rangeOf(st, SymTid).intersect(ival{0, int64(a.k.BlockDim) - 1})
	bids := a.rangeOf(st, SymBid).intersect(ival{0, int64(a.k.GridDim) - 1})
	if tids.empty() || bids.empty() {
		return nil, false
	}
	return &strideFoot{
		s: s, cG: c / g, stepG: kT / g, tids: tids, bids: bids,
		lanes: a.rangeOf(st, SymLane), warps: a.rangeOf(st, SymWarp),
	}, true
}

// touchTid returns the block-local thread that can reach granule g of
// block b, or -1. The claimed thread set over-approximates the real
// one (path conditions beyond the recorded ranges are dropped), which
// only ever adds conflicts.
func (sf *strideFoot) touchTid(b, g, ws int64) int64 {
	d := g - sf.cG
	if d < 0 || d%sf.stepG != 0 {
		return -1
	}
	t := d / sf.stepG
	if !sf.tids.contains(t) || !sf.bids.contains(b) {
		return -1
	}
	if !sf.lanes.contains(t%ws) || !sf.warps.contains(t/ws) {
		return -1
	}
	return t
}

// strideOverlap reports whether two progressions can share a granule:
// intersecting ranges plus a solvable congruence cG ≡ cG′ modulo
// gcd(stepG, stepG′).
func strideOverlap(x, y *strideFoot) bool {
	xlo, xhi := x.cG+x.stepG*x.tids.lo, x.cG+x.stepG*x.tids.hi
	ylo, yhi := y.cG+y.stepG*y.tids.lo, y.cG+y.stepG*y.tids.hi
	if xhi < ylo || yhi < xlo {
		return false
	}
	d := gcd64(x.stepG, y.stepG)
	return (x.cG-y.cG)%d == 0
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// enumerate walks a site's concrete footprint: every (granule, global
// thread id) pair the site can touch, as a flat [g0, t0, g1, t1, ...]
// slice. Address arithmetic is wrapping uint64, exactly like the
// executor. φ symbols iterate over their interval intersected with
// their solved congruence — a strided loop counter steps by its
// stride, not by one — which is what keeps strided footprints inside
// the point budget. Returns ok=false when the footprint is statically
// unknown or exceeds the budget.
func (a *analyzer) enumerate(s *siteAcc, gran int, budget int64) ([]uint64, bool) {
	if s.addr.top || s.size <= 0 {
		return nil, false
	}
	st := &state{ranges: s.ranges}
	// Iteration ranges for the thread coordinates, clipped to launch
	// geometry (refinement can only have narrowed them).
	ws := int64(a.conf.WarpSize)
	tids := a.rangeOf(st, SymTid).intersect(ival{0, int64(a.k.BlockDim) - 1})
	bids := a.rangeOf(st, SymBid).intersect(ival{0, int64(a.k.GridDim) - 1})
	lanes := a.rangeOf(st, SymLane)
	warps := a.rangeOf(st, SymWarp)
	if tids.empty() || bids.empty() {
		return nil, true // provably no executing thread
	}
	// φ symbols appearing in the address must have bounded ranges.
	var phiSyms []symID
	var phiStart, phiStep, phiCount []int64
	for _, t := range s.addr.terms {
		switch t.sym {
		case SymTid, SymBid, SymLane, SymWarp:
		default:
			r := a.rangeOf(st, t.sym)
			if !r.bounded() || r.empty() {
				return nil, false
			}
			start, step, count := congStep(r, a.congOf(t.sym))
			if count <= 0 {
				return nil, true // range ∩ congruence empty: never executes
			}
			phiSyms = append(phiSyms, t.sym)
			phiStart = append(phiStart, start)
			phiStep = append(phiStep, step)
			phiCount = append(phiCount, count)
		}
	}
	coefTid := s.addr.termCoef(SymTid)
	coefBid := s.addr.termCoef(SymBid)
	coefLane := s.addr.termCoef(SymLane)
	coefWarp := s.addr.termCoef(SymWarp)
	// Point budget: threads × φ-member product.
	points := (tids.hi - tids.lo + 1) * (bids.hi - bids.lo + 1)
	if points <= 0 {
		return nil, false
	}
	for _, n := range phiCount {
		if points > budget/n {
			return nil, false
		}
		points *= n
	}
	if points > budget {
		return nil, false
	}
	gsize := uint64(gran)
	span := uint64(s.size-1) / gsize // extra granules past the first
	var res []uint64
	var emit func(base uint64, gtid int64, depth int)
	emit = func(base uint64, gtid int64, depth int) {
		if depth == len(phiSyms) {
			g0 := base / gsize
			for g := g0; g <= g0+span; g++ {
				key := g
				if s.space == isa.SpaceShared {
					// Block-qualified: shared windows are per-block.
					key = uint64(gtid/int64(a.k.BlockDim))<<32 | (g & 0xFFFFFFFF)
				}
				res = append(res, key, uint64(gtid))
			}
			return
		}
		c := uint64(s.addr.termCoef(phiSyms[depth]))
		v := phiStart[depth]
		for i := int64(0); i < phiCount[depth]; i++ {
			emit(base+c*uint64(v), gtid, depth+1)
			v += phiStep[depth]
		}
	}
	for bid := bids.lo; bid <= bids.hi; bid++ {
		for tid := tids.lo; tid <= tids.hi; tid++ {
			lane, warp := tid%ws, tid/ws
			if !lanes.contains(lane) || !warps.contains(warp) {
				continue // path conditions exclude this thread
			}
			base := uint64(s.addr.c) +
				uint64(coefTid)*uint64(tid) +
				uint64(coefBid)*uint64(bid) +
				uint64(coefLane)*uint64(lane) +
				uint64(coefWarp)*uint64(warp)
			gtid := bid*int64(a.k.BlockDim) + tid
			emit(base, gtid, 0)
		}
	}
	return res, true
}
