package staticrace

import "haccrg/internal/isa"

// SiteClass is the race-freedom verdict for one memory site.
type SiteClass uint8

const (
	// ClassUnknown: nothing proven; the site must stay on the dynamic
	// detector's hot path.
	ClassUnknown SiteClass = iota
	// ClassPrivate: every granule the site touches is touched by at
	// most one thread over the whole kernel.
	ClassPrivate
	// ClassReadShared: every granule the site touches is never written
	// by any site.
	ClassReadShared
	// ClassRaceFree: a mix — each granule is either single-thread or
	// never written.
	ClassRaceFree
)

func (c SiteClass) String() string {
	switch c {
	case ClassPrivate:
		return "private"
	case ClassReadShared:
		return "read-shared"
	case ClassRaceFree:
		return "race-free"
	}
	return "unknown"
}

// gInfo is the per-granule ownership summary accumulated across every
// site of a memory space.
type gInfo struct {
	owner   int64 // global thread id; -1 none yet, -2 multiple
	written bool
}

// proveSpace classifies every live site of one memory space.
//
// Criterion (sync-insensitive, granule-level): a granule is race-free
// iff it is never written, or touched by exactly one distinct thread
// over the whole kernel. A site may be filtered iff every granule it
// can touch is race-free. Soundness against the dynamic RDU:
//
//   - single-thread granules only ever hit the sameThread fast path of
//     the happens-before state machine, which never reports;
//   - never-written granules keep reads in the read states, which
//     never report either;
//   - the intra-warp WAW check needs two lanes on one address, which
//     makes the granule multi-thread and hence the site unfilterable.
//
// Atomics count as writes. Unknown footprints poison conservatively:
// an unknown *write* poisons the whole space (it could write any
// granule); an unknown *read* restricts race-freedom to never-written
// granules (it could observe any written granule, and filtering the
// writer would change what the unfiltered reader reports).
func (a *analyzer) proveSpace(space isa.Space, gran int, out map[int]*SiteInfo) {
	var live []*siteAcc
	unknownWrite, unknownRead := false, false
	for _, s := range a.sites {
		if s.space != space || s.dead {
			continue
		}
		live = append(live, s)
	}
	if gran <= 0 {
		gran = 1
	}
	// Shared shadow windows are slot-relative; if the block's window is
	// not granule-aligned, one granule can span two co-resident blocks'
	// windows and block-relative footprints no longer map 1:1 onto
	// runtime granules. Poison the space.
	poisoned := space == isa.SpaceShared && a.k.SharedBytes%gran != 0
	type fp struct {
		site     *siteAcc
		granules []uint64
	}
	foots := make([]fp, 0, len(live))
	var total int64
	budget := a.conf.MaxFootprintPoints
	if budget <= 0 {
		budget = 1 << 22
	}
	for _, s := range live {
		var gr []uint64
		ok := !poisoned
		if ok {
			gr, ok = a.enumerate(s, gran, budget)
		}
		if ok {
			total += int64(len(gr))
			if total > budget {
				ok = false
			}
		}
		if !ok {
			if s.write || s.atomic {
				unknownWrite = true
			} else {
				unknownRead = true
			}
			continue
		}
		foots = append(foots, fp{site: s, granules: gr})
	}
	// Ownership map over (granule, thread) pairs from the known sites.
	owners := map[uint64]*gInfo{}
	for _, f := range foots {
		w := f.site.write || f.site.atomic
		for i := 0; i < len(f.granules); i += 2 {
			g, tid := f.granules[i], int64(f.granules[i+1])
			e := owners[g]
			if e == nil {
				e = &gInfo{owner: tid}
				owners[g] = e
			} else if e.owner != tid {
				e.owner = -2
			}
			if w {
				e.written = true
			}
		}
	}
	for _, f := range foots {
		s := f.site
		info := out[s.pc]
		single, unwritten := true, true
		for i := 0; i < len(f.granules); i += 2 {
			e := owners[f.granules[i]]
			if e.owner == -2 {
				single = false
			}
			if e.written {
				unwritten = false
			}
		}
		switch {
		case unknownWrite:
			info.Class = ClassUnknown
		case unknownRead && !unwritten:
			// A statically-opaque read may alias this written granule.
			info.Class = ClassUnknown
		case single && unwritten:
			if len(f.granules) == 0 {
				info.Class = ClassPrivate
			} else if s.write || s.atomic {
				info.Class = ClassPrivate
			} else {
				info.Class = ClassReadShared
			}
		case single:
			info.Class = ClassPrivate
		case unwritten:
			info.Class = ClassReadShared
		default:
			// Mixed: every granule individually race-free?
			ok := true
			for i := 0; i < len(f.granules); i += 2 {
				e := owners[f.granules[i]]
				if e.owner == -2 && e.written {
					ok = false
					break
				}
			}
			if ok {
				info.Class = ClassRaceFree
			} else {
				info.Class = ClassUnknown
			}
		}
		info.Granules = len(f.granules) / 2
	}
}

// enumerate walks a site's concrete footprint: every (granule, global
// thread id) pair the site can touch, as a flat [g0, t0, g1, t1, ...]
// slice. Address arithmetic is wrapping uint64, exactly like the
// executor. Returns ok=false when the footprint is statically unknown
// or exceeds the point budget.
func (a *analyzer) enumerate(s *siteAcc, gran int, budget int64) ([]uint64, bool) {
	if s.addr.top || s.size <= 0 {
		return nil, false
	}
	st := &state{ranges: s.ranges}
	// Iteration ranges for the thread coordinates, clipped to launch
	// geometry (refinement can only have narrowed them).
	ws := int64(a.conf.WarpSize)
	tids := a.rangeOf(st, SymTid).intersect(ival{0, int64(a.k.BlockDim) - 1})
	bids := a.rangeOf(st, SymBid).intersect(ival{0, int64(a.k.GridDim) - 1})
	lanes := a.rangeOf(st, SymLane)
	warps := a.rangeOf(st, SymWarp)
	if tids.empty() || bids.empty() {
		return nil, true // provably no executing thread
	}
	// φ symbols appearing in the address must have bounded ranges.
	var phiSyms []symID
	var phiRanges []ival
	var coefTid, coefBid, coefLane, coefWarp int64
	for _, t := range s.addr.terms {
		switch t.sym {
		case SymTid:
			coefTid = t.coef
		case SymBid:
			coefBid = t.coef
		case SymLane:
			coefLane = t.coef
		case SymWarp:
			coefWarp = t.coef
		default:
			r := a.rangeOf(st, t.sym)
			if !r.bounded() || r.empty() {
				return nil, false
			}
			phiSyms = append(phiSyms, t.sym)
			phiRanges = append(phiRanges, r)
		}
	}
	// Point budget: threads × φ-range product.
	points := (tids.hi - tids.lo + 1) * (bids.hi - bids.lo + 1)
	if points <= 0 {
		return nil, false
	}
	for _, r := range phiRanges {
		n := r.hi - r.lo + 1
		if n <= 0 || points > budget/n {
			return nil, false
		}
		points *= n
	}
	if points > budget {
		return nil, false
	}
	gsize := uint64(gran)
	span := uint64(s.size-1) / gsize // extra granules past the first
	var res []uint64
	var emit func(base uint64, tid int64, depth int)
	emit = func(base uint64, gtid int64, depth int) {
		if depth == len(phiSyms) {
			g0 := base / gsize
			for g := g0; g <= g0+span; g++ {
				key := g
				if s.space == isa.SpaceShared {
					// Block-qualified: shared windows are per-block.
					key = uint64(gtid/int64(a.k.BlockDim))<<32 | (g & 0xFFFFFFFF)
				}
				res = append(res, key, uint64(gtid))
			}
			return
		}
		r := phiRanges[depth]
		c := uint64(s.addr.termCoef(phiSyms[depth]))
		for v := r.lo; v <= r.hi; v++ {
			emit(base+c*uint64(v), gtid, depth+1)
		}
	}
	for bid := bids.lo; bid <= bids.hi; bid++ {
		for tid := tids.lo; tid <= tids.hi; tid++ {
			lane, warp := tid%ws, tid/ws
			if !lanes.contains(lane) || !warps.contains(warp) {
				continue // path conditions exclude this thread
			}
			base := uint64(s.addr.c) +
				uint64(coefTid)*uint64(tid) +
				uint64(coefBid)*uint64(bid) +
				uint64(coefLane)*uint64(lane) +
				uint64(coefWarp)*uint64(warp)
			gtid := bid*int64(a.k.BlockDim) + tid
			emit(base, gtid, 0)
		}
	}
	return res, true
}
