package staticrace

import (
	"sort"

	"haccrg/internal/gpu"
)

// Filter maps kernel names to pc-indexed "provably race-free" masks.
// It satisfies core.StaticFilter structurally (staticrace must not
// import core: core imports nothing above gpu/isa, and the filter is
// injected through the Options interface instead).
type Filter struct {
	sites    map[string][]bool
	analyses []*Analysis
}

// NewFilter analyzes every kernel of a plan and builds the detector
// filter. When the same kernel name is launched more than once (the
// filter is keyed by name, which is all the detector sees at
// KernelStart), the masks are AND-merged: a site stays filterable only
// if every launch proves it race-free.
func NewFilter(conf Config, kernels ...*gpu.Kernel) (*Filter, error) {
	f := &Filter{sites: map[string][]bool{}}
	for _, k := range kernels {
		res, err := Analyze(k, conf)
		if err != nil {
			return nil, err
		}
		f.analyses = append(f.analyses, res)
		if prev, ok := f.sites[k.Name]; ok {
			merged := make([]bool, len(prev))
			for pc := range merged {
				merged[pc] = prev[pc] && pc < len(res.Filterable) && res.Filterable[pc]
			}
			f.sites[k.Name] = merged
			continue
		}
		f.sites[k.Name] = append([]bool(nil), res.Filterable...)
	}
	return f, nil
}

// FilterSites implements core.StaticFilter: the pc-indexed skip mask
// for a kernel, or nil when the kernel was never analyzed.
func (f *Filter) FilterSites(kernel string) []bool {
	return f.sites[kernel]
}

// Analyses returns the per-launch analysis results, in plan order.
func (f *Filter) Analyses() []*Analysis { return f.analyses }

// FilteredPCs lists the PCs the detector will skip for a kernel.
func (f *Filter) FilteredPCs(kernel string) []int {
	var pcs []int
	for pc, ok := range f.sites[kernel] {
		if ok {
			pcs = append(pcs, pc)
		}
	}
	sort.Ints(pcs)
	return pcs
}

// FilterableSites counts filterable sites across all analyzed kernels.
func (f *Filter) FilterableSites() (filterable, total int) {
	for _, res := range f.analyses {
		for _, s := range res.Sites {
			total++
			if s.Class.filterable() {
				filterable++
			}
		}
	}
	return filterable, total
}

// RaceSeeds returns the verified global-space race witnesses for a
// kernel — the input to detector quarantine pre-seeding. The detector
// keys launches by name only, so when the same name was analyzed more
// than once, only witnesses whose granule is witnessed in every launch
// survive (seeding reports races, so the intersection is the sound
// direction).
func (f *Filter) RaceSeeds(kernel string) []Witness {
	var launches [][]Witness
	for _, res := range f.analyses {
		if res.Kernel != kernel {
			continue
		}
		var ws []Witness
		for _, w := range res.Witnesses {
			if w.Kind == WitnessRace && w.Verified && w.Space == "global" {
				ws = append(ws, w)
			}
		}
		launches = append(launches, ws)
	}
	if len(launches) == 0 {
		return nil
	}
	out := launches[0]
	for _, later := range launches[1:] {
		granules := map[uint64]bool{}
		for _, w := range later {
			granules[w.Granule] = true
		}
		kept := out[:0]
		for _, w := range out {
			if granules[w.Granule] {
				kept = append(kept, w)
			}
		}
		out = kept
	}
	return out
}

// WitnessTotals sums verified witnesses, checker drops, and
// proof/witness conflicts across all analyzed kernels.
func (f *Filter) WitnessTotals() (witnesses, dropped, conflicts int) {
	for _, res := range f.analyses {
		witnesses += len(res.Witnesses)
		dropped += res.WitnessDropped
		conflicts += res.Conflicts
	}
	return
}
