package staticrace_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
	"haccrg/internal/staticrace"
)

// Register/pred conventions for generated programs: scratch registers
// r4..r11, loop counters r22/r23 (never touched by random ops so every
// generated loop is counted and terminates), predicates p0..p2 for
// random Setp/If, p3/p4 reserved for the loop conditions.
const (
	gTid  = isa.Reg(1)
	gBid  = isa.Reg(2)
	gGtid = isa.Reg(3)
	gCnt0 = isa.Reg(22)
	gCnt1 = isa.Reg(23)
)

type genFrame struct {
	loop bool
	cnt  isa.Reg
	pred isa.Pred
	n    int64
}

// genKernel decodes a byte stream into a random structured kernel that
// is safe to actually launch: addresses are masked into the shared and
// global segments, loops are counted on reserved registers, and BAR is
// only emitted outside control structures (a divergent barrier would
// deadlock the dynamic run the soundness test needs). Returns nil when
// the builder rejects the program.
func genKernel(name string, data []byte) *gpu.Kernel {
	b := isa.NewBuilder(name)
	b.Sreg(gTid, isa.SregTid)
	b.Sreg(gBid, isa.SregCtaid)
	b.Sreg(gGtid, isa.SregGtid)

	scratch := func(x byte) isa.Reg { return isa.Reg(4 + int(x)%8) }
	pred := func(x byte) isa.Pred { return isa.Pred(int(x) % 3) }

	var stack []genFrame
	pop := func() {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.loop {
			b.Addi(f.cnt, f.cnt, 1)
			b.Setpi(f.pred, isa.CmpLT, f.cnt, f.n)
			b.EndWhile()
		} else {
			b.EndIf()
		}
	}

	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		v := data[i]
		i++
		return v
	}
	steps := len(data) / 2
	if steps > 48 {
		steps = 48
	}
	for s := 0; s < steps; s++ {
		op, arg := next(), next()
		d, a := scratch(arg), scratch(arg>>3)
		switch op % 18 {
		case 0:
			b.Addi(d, a, int64(arg%16))
		case 1:
			b.Muli(d, a, int64(arg%8))
		case 2:
			b.Andi(d, a, int64(arg))
		case 3:
			b.Add(d, a, scratch(arg>>5))
		case 4:
			b.Sub(d, a, scratch(arg>>5))
		case 5:
			b.Mul(d, gTid, a)
		case 6:
			b.Setpi(pred(arg), isa.CmpLT, a, int64(arg%64))
		case 7:
			b.Setp(pred(arg), isa.CmpEQ, a, scratch(arg>>4))
		case 8:
			b.Selp(d, pred(arg), a, scratch(arg>>5))
		case 9:
			if len(stack) < 2 {
				b.If(pred(arg))
				stack = append(stack, genFrame{})
			}
		case 10:
			if len(stack) < 2 {
				cnt := gCnt0
				if len(stack) == 1 {
					cnt = gCnt1
				}
				p := isa.Pred(3 + len(stack))
				n := int64(2 + arg%3)
				b.Movi(cnt, 0)
				b.Setpi(p, isa.CmpLT, cnt, n)
				b.While(p)
				stack = append(stack, genFrame{loop: true, cnt: cnt, pred: p, n: n})
			}
		case 11:
			if len(stack) > 0 {
				pop()
			}
		case 12:
			if len(stack) == 0 {
				b.Bar()
			}
		case 13:
			b.Membar()
		case 14:
			b.Andi(d, a, 252)
			if arg&1 == 0 {
				b.St(isa.SpaceShared, d, 0, scratch(arg>>4), 4)
			} else {
				b.Ld(scratch(arg>>4), isa.SpaceShared, d, 0, 4)
			}
		case 15:
			b.Andi(d, a, 1020)
			if arg&1 == 0 {
				b.St(isa.SpaceGlobal, d, 0, scratch(arg>>4), 4)
			} else {
				b.Ld(scratch(arg>>4), isa.SpaceGlobal, d, 0, 4)
			}
		case 16:
			b.Andi(d, a, 1020)
			b.Atom(scratch(arg>>4), isa.AtomAdd, isa.SpaceGlobal, d, 0, scratch(arg>>2), 0)
		case 17:
			b.Shri(d, a, int64(arg%5))
		}
	}
	for len(stack) > 0 {
		pop()
	}
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil
	}
	return &gpu.Kernel{
		Name: name, Prog: prog,
		GridDim: 2, BlockDim: 64, SharedBytes: 256,
	}
}

// launchWithDetector runs one kernel under a fresh HAccRG detector.
func launchWithDetector(t *testing.T, k *gpu.Kernel, f core.StaticFilter, parallel bool) *core.Detector {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Parallel = parallel
	det := core.MustNew(opt)
	if f != nil {
		det.SetStaticFilter(f)
	}
	dev, err := gpu.NewDevice(gpu.TestConfig(), 1<<16, det)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.LaunchContext(context.Background(), k, gpu.LaunchLimits{MaxCycles: 5_000_000}); err != nil {
		t.Fatalf("launch %s: %v\n%s", k.Name, err, k.Prog.Disassemble())
	}
	return det
}

// raceSummary renders races for exact comparison.
func raceSummary(races []*core.Race) string {
	var sb strings.Builder
	for _, r := range races {
		fmt.Fprintf(&sb, "%s/%s/%s/pc%d/g%d/%d-%d x%d\n",
			r.Space, r.Kind, r.Category, r.PC, r.Granule, r.FirstTid, r.SecondTid, r.Count)
	}
	return sb.String()
}

// detectorConf mirrors the analyzer configuration the detector's
// options imply.
func detectorConf() staticrace.Config {
	opt := core.DefaultOptions()
	cfg := gpu.TestConfig()
	return staticrace.Config{
		WarpSize:          cfg.WarpSize,
		SharedGranularity: opt.SharedGranularity,
		GlobalGranularity: opt.GlobalGranularity,
	}
}

// TestRandomProgramSoundness is the prover's differential soundness
// sweep: for a corpus of randomized builder-generated programs, (a) no
// dynamically-reported race may land on a site the prover marked
// filterable, and (b) findings with the filter attached must be
// byte-identical to the unfiltered run, on both engines.
func TestRandomProgramSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	conf := detectorConf()
	analyzed, raced := 0, 0
	for n := 0; n < 60; n++ {
		data := make([]byte, 40+rng.Intn(60))
		rng.Read(data)
		k := genKernel(fmt.Sprintf("rand%03d", n), data)
		if k == nil {
			continue
		}
		f, err := staticrace.NewFilter(conf, k)
		if err != nil {
			t.Fatalf("sample %d: analysis failed: %v\n%s", n, err, k.Prog.Disassemble())
		}
		analyzed++
		mask := f.FilterSites(k.Name)
		for _, parallel := range []bool{false, true} {
			off := launchWithDetector(t, k, nil, parallel)
			on := launchWithDetector(t, k, f, parallel)
			for _, r := range off.SortedRaces() {
				if r.PC >= 0 && r.PC < len(mask) && mask[r.PC] {
					t.Errorf("sample %d (parallel=%v): dynamic race at pc %d on a site proven race-free\n%s",
						n, parallel, r.PC, k.Prog.Disassemble())
				}
			}
			if got, want := raceSummary(on.SortedRaces()), raceSummary(off.SortedRaces()); got != want {
				t.Errorf("sample %d (parallel=%v): filtered findings diverged\n on: %s\noff: %s\n%s",
					n, parallel, got, want, k.Prog.Disassemble())
			}
			if len(off.SortedRaces()) > 0 {
				raced++
			}
		}
	}
	if analyzed < 30 {
		t.Fatalf("only %d samples survived generation; corpus too thin", analyzed)
	}
	if raced == 0 {
		t.Fatal("no random sample raced dynamically; the oracle never bit")
	}
	t.Logf("%d samples analyzed, %d runs with dynamic races", analyzed, raced)
}
