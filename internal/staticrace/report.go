package staticrace

import (
	"encoding/json"
	"fmt"
	"strings"
)

// KernelReport is the JSON shape emitted per analyzed kernel.
type KernelReport struct {
	Kernel   string      `json:"kernel"`
	Findings []Finding   `json:"findings"`
	Sites    []*SiteInfo `json:"sites,omitempty"`
}

// SuiteReport aggregates analysis output across kernels.
type SuiteReport struct {
	Kernels  []KernelReport `json:"kernels"`
	Findings int            `json:"findings"`
}

// BuildReport converts analyses into the serializable report form.
func BuildReport(analyses []*Analysis, withSites bool) *SuiteReport {
	rep := &SuiteReport{}
	for _, a := range analyses {
		kr := KernelReport{Kernel: a.Kernel, Findings: a.Findings}
		if kr.Findings == nil {
			kr.Findings = []Finding{}
		}
		if withSites {
			kr.Sites = a.Sites
		}
		rep.Kernels = append(rep.Kernels, kr)
		rep.Findings += len(a.Findings)
	}
	return rep
}

// JSON renders the report as indented JSON.
func (r *SuiteReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}

// Human renders the report for terminals: per-kernel findings with a
// window of disassembly context around each flagged pc, then the
// prover's site classification when requested.
func (r *SuiteReport) Human(analyses []*Analysis, context int) string {
	var b strings.Builder
	byName := map[string]*Analysis{}
	for _, a := range analyses {
		byName[a.Kernel] = a
	}
	clean := 0
	for _, kr := range r.Kernels {
		if len(kr.Findings) == 0 {
			clean++
			continue
		}
		fmt.Fprintf(&b, "kernel %s: %d finding(s)\n", kr.Kernel, len(kr.Findings))
		a := byName[kr.Kernel]
		for _, f := range kr.Findings {
			fmt.Fprintf(&b, "  pc %d: [%s] %s\n", f.PC, f.Pass, f.Msg)
			if a != nil {
				b.WriteString(disasmContext(a, f, context))
			}
		}
		if kr.Sites != nil {
			writeSites(&b, kr.Sites)
		}
	}
	for _, kr := range r.Kernels {
		if len(kr.Findings) == 0 && kr.Sites != nil {
			fmt.Fprintf(&b, "kernel %s: clean\n", kr.Kernel)
			writeSites(&b, kr.Sites)
		}
	}
	fmt.Fprintf(&b, "summary: %d finding(s) across %d kernel(s), %d clean\n",
		r.Findings, len(r.Kernels), clean)
	return b.String()
}

func writeSites(b *strings.Builder, sites []*SiteInfo) {
	for _, s := range sites {
		extra := ""
		if s.Dead {
			extra = " (dead)"
		}
		fmt.Fprintf(b, "    site pc %-4d %-6s %-4s -> %s (%d granules)%s\n",
			s.PC, s.Space, s.Op, s.ClassStr, s.Granules, extra)
	}
}

// disasmContext renders the instructions around a finding, marking the
// flagged pc and any related pcs.
func disasmContext(a *Analysis, f Finding, context int) string {
	prog := a.CFG.Prog
	mark := map[int]string{f.PC: ">"}
	lo, hi := f.PC-context, f.PC+context
	for _, r := range f.Related {
		mark[r] = "~"
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= len(prog.Code) {
		hi = len(prog.Code) - 1
	}
	var b strings.Builder
	prev := lo - 1
	for pc := lo; pc <= hi; pc++ {
		// Skip the middle of long gaps between related pcs.
		if hi-lo > 2*context+6 && pc > f.PC+context {
			inRelated := false
			for _, r := range f.Related {
				if pc >= r-context && pc <= r+context {
					inRelated = true
					break
				}
			}
			if !inRelated && !(pc >= f.PC-context && pc <= f.PC+context) {
				continue
			}
		}
		if pc != prev+1 {
			b.WriteString("      ...\n")
		}
		prev = pc
		m := mark[pc]
		if m == "" {
			m = " "
		}
		fmt.Fprintf(&b, "    %s %4d  %s\n", m, pc, prog.Code[pc].String())
	}
	return b.String()
}
