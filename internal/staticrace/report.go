package staticrace

import (
	"encoding/json"
	"fmt"
	"strings"

	"haccrg/internal/termtab"
)

// ReportSchema versions the JSON report shape for downstream parsers.
// v2 added the schema field itself, per-finding severities, and the
// per-kernel witness block.
const ReportSchema = "haccrg-lint/2"

// KernelReport is the JSON shape emitted per analyzed kernel.
type KernelReport struct {
	Kernel         string      `json:"kernel"`
	Findings       []Finding   `json:"findings"`
	Sites          []*SiteInfo `json:"sites,omitempty"`
	WitnessSchema  string      `json:"witnessSchema,omitempty"`
	Witnesses      []Witness   `json:"witnesses,omitempty"`
	WitnessDropped int         `json:"witnessDropped,omitempty"`
	Conflicts      int         `json:"conflicts,omitempty"`
}

// SuiteReport aggregates analysis output across kernels.
type SuiteReport struct {
	Schema    string         `json:"schema"`
	Kernels   []KernelReport `json:"kernels"`
	Findings  int            `json:"findings"`
	Witnesses int            `json:"witnesses"`
}

// BuildReport converts analyses into the serializable report form.
func BuildReport(analyses []*Analysis, withSites bool) *SuiteReport {
	rep := &SuiteReport{Schema: ReportSchema}
	for _, a := range analyses {
		kr := KernelReport{
			Kernel:         a.Kernel,
			Findings:       a.Findings,
			Witnesses:      a.Witnesses,
			WitnessDropped: a.WitnessDropped,
			Conflicts:      a.Conflicts,
		}
		if kr.Findings == nil {
			kr.Findings = []Finding{}
		}
		if len(kr.Witnesses) > 0 {
			kr.WitnessSchema = WitnessSchema
		}
		if withSites {
			kr.Sites = a.Sites
		}
		rep.Kernels = append(rep.Kernels, kr)
		rep.Findings += len(a.Findings)
		rep.Witnesses += len(a.Witnesses)
	}
	return rep
}

// JSON renders the report as indented JSON.
func (r *SuiteReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}

// Human renders the report for terminals: per-kernel findings with a
// window of disassembly context around each flagged pc, the witness
// list, then the prover's site classification when requested. tty
// selects aligned, colored tables (termtab).
func (r *SuiteReport) Human(analyses []*Analysis, context int, tty bool) string {
	var b strings.Builder
	byName := map[string]*Analysis{}
	for _, a := range analyses {
		byName[a.Kernel] = a
	}
	clean := 0
	writeKernel := func(kr *KernelReport) {
		a := byName[kr.Kernel]
		for _, f := range kr.Findings {
			sev := f.Severity
			if sev == "" {
				sev = "warn"
			}
			if tty && sev == "error" {
				sev = string(termtab.Red) + sev + "\x1b[0m"
			}
			fmt.Fprintf(&b, "  pc %d: [%s] %s: %s\n", f.PC, f.Pass, sev, f.Msg)
			if a != nil {
				b.WriteString(disasmContext(a, f, context))
			}
		}
		if len(kr.Witnesses) > 0 {
			fmt.Fprintf(&b, "  %d verified witness(es):\n", len(kr.Witnesses))
			writeWitnesses(&b, kr.Witnesses, tty)
		}
		if kr.WitnessDropped > 0 {
			fmt.Fprintf(&b, "  %d witness(es) dropped (failed verification or per-kernel cap)\n", kr.WitnessDropped)
		}
		if kr.Conflicts > 0 {
			fmt.Fprintf(&b, "  %d proof/witness conflict(s) — proofs dropped\n", kr.Conflicts)
		}
		if kr.Sites != nil {
			writeSites(&b, kr.Sites, tty)
		}
	}
	for i := range r.Kernels {
		kr := &r.Kernels[i]
		if len(kr.Findings) == 0 {
			clean++
			continue
		}
		fmt.Fprintf(&b, "kernel %s: %d finding(s)\n", kr.Kernel, len(kr.Findings))
		writeKernel(kr)
	}
	for i := range r.Kernels {
		kr := &r.Kernels[i]
		if len(kr.Findings) == 0 && (kr.Sites != nil || len(kr.Witnesses) > 0) {
			fmt.Fprintf(&b, "kernel %s: clean\n", kr.Kernel)
			writeKernel(kr)
		}
	}
	fmt.Fprintf(&b, "summary: %d finding(s), %d witness(es) across %d kernel(s), %d clean\n",
		r.Findings, r.Witnesses, len(r.Kernels), clean)
	return b.String()
}

// classStyle colors a site class by what the detector will do with it:
// green sites are skipped (proven race-free), yellow stay on the slow
// path, red are witnessed racy.
func classStyle(class string) termtab.Style {
	switch class {
	case ClassUnknown.String():
		return termtab.Yellow
	case ClassRacy.String():
		return termtab.Red
	default:
		return termtab.Green
	}
}

func writeSites(b *strings.Builder, sites []*SiteInfo, tty bool) {
	t := termtab.New(tty).Indent("    ")
	t.Row(termtab.C("site"), termtab.C("pc"), termtab.C("space"), termtab.C("op"),
		termtab.C("class"), termtab.C("granules"))
	for _, s := range sites {
		extra := ""
		if s.Dead {
			extra = " (dead)"
		}
		t.Row(termtab.C(""), termtab.C(fmt.Sprint(s.PC)), termtab.C(s.Space), termtab.C(s.Op),
			termtab.Cell{Text: s.ClassStr, Style: classStyle(s.ClassStr)},
			termtab.C(fmt.Sprintf("%d%s", s.Granules, extra)))
	}
	b.WriteString(t.String())
}

// witnessStyle colors the kind column: guaranteed races red, the other
// defect kinds yellow.
func witnessStyle(kind string) termtab.Style {
	if kind == WitnessRace {
		return termtab.Red
	}
	return termtab.Yellow
}

func writeWitnesses(b *strings.Builder, ws []Witness, tty bool) {
	t := termtab.New(tty).Indent("    ")
	t.Row(termtab.C("kind"), termtab.C("class"), termtab.C("pcs"), termtab.C("space"),
		termtab.C("granule"), termtab.C("threads"), termtab.C("method"))
	for _, w := range ws {
		pcs := fmt.Sprint(w.PC)
		if w.PC2 != 0 && w.PC2 != w.PC {
			pcs = fmt.Sprintf("%d,%d", w.PC, w.PC2)
		}
		threads := fmt.Sprintf("(b%d,t%d)", w.Block, w.Tid)
		if w.Block2 != w.Block || w.Tid2 != w.Tid {
			threads += fmt.Sprintf("/(b%d,t%d)", w.Block2, w.Tid2)
		}
		t.Row(termtab.Cell{Text: w.Kind, Style: witnessStyle(w.Kind)},
			termtab.C(w.Class), termtab.C(pcs), termtab.C(w.Space),
			termtab.C(fmt.Sprint(w.Granule)), termtab.C(threads), termtab.C(w.Method))
	}
	b.WriteString(t.String())
}

// disasmContext renders the instructions around a finding, marking the
// flagged pc and any related pcs.
func disasmContext(a *Analysis, f Finding, context int) string {
	prog := a.CFG.Prog
	mark := map[int]string{f.PC: ">"}
	lo, hi := f.PC-context, f.PC+context
	for _, r := range f.Related {
		mark[r] = "~"
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= len(prog.Code) {
		hi = len(prog.Code) - 1
	}
	var b strings.Builder
	prev := lo - 1
	for pc := lo; pc <= hi; pc++ {
		// Skip the middle of long gaps between related pcs.
		if hi-lo > 2*context+6 && pc > f.PC+context {
			inRelated := false
			for _, r := range f.Related {
				if pc >= r-context && pc <= r+context {
					inRelated = true
					break
				}
			}
			if !inRelated && !(pc >= f.PC-context && pc <= f.PC+context) {
				continue
			}
		}
		if pc != prev+1 {
			b.WriteString("      ...\n")
		}
		prev = pc
		m := mark[pc]
		if m == "" {
			m = " "
		}
		fmt.Fprintf(&b, "    %s %4d  %s\n", m, pc, prog.Code[pc].String())
	}
	return b.String()
}
