package staticrace

import "math/bits"

// cong is a power-of-two congruence: the set of uint64 values v with
// v ≡ off (mod m). Two sentinel moduli complete the lattice:
//
//	m == 0  the exact constant off (⊥ of the value, strongest fact)
//	m == 1  top (every value)
//
// Every other modulus is a power of two. Restricting moduli to powers
// of two is what keeps the domain sound under the executor's wrapping
// uint64 arithmetic: a ≡ b (mod 2^k) is preserved by wrap-around
// because 2^k divides 2^64, which no other modulus family guarantees.
// The offsets of strided GPU addressing (element sizes 1/2/4/8/16,
// AND-masks, shifts) are power-of-two anyway, so nothing of practical
// value is lost.
type cong struct {
	mod uint64
	off uint64
}

func congConst(c uint64) cong { return cong{mod: 0, off: c} }
func congTop() cong           { return cong{mod: 1, off: 0} }

func (c cong) isTop() bool   { return c.mod == 1 }
func (c cong) isConst() bool { return c.mod == 0 }

// contains reports whether the concrete value v is a member.
func (c cong) contains(v uint64) bool {
	switch c.mod {
	case 0:
		return v == c.off
	case 1:
		return true
	}
	return v&(c.mod-1) == c.off&(c.mod-1)
}

// minMod is the weaker (smaller) of two moduli, with 0 acting as the
// infinite modulus of an exact constant.
func minMod(a, b uint64) uint64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if a < b {
		return a
	}
	return b
}

// join is the lattice join (least upper bound); because power-of-two
// moduli form finite divisor chains it doubles as the widening.
func (x cong) join(y cong) cong {
	if x == y {
		return x
	}
	if x.isTop() || y.isTop() {
		return congTop()
	}
	m := minMod(x.mod, y.mod)
	if d := x.off - y.off; d != 0 {
		// The offsets differ by d, so only the congruence modulo the
		// 2-adic part of d survives. Wrapping subtraction keeps the low
		// bits of the true difference, which is all lowbit() reads.
		m = minMod(m, d&-d)
	}
	if m == 0 {
		return cong{mod: 0, off: x.off} // equal constants
	}
	if m == 1 {
		return congTop()
	}
	return cong{mod: m, off: x.off & (m - 1)}
}

// add is the sound transfer for wrapping uint64 addition.
func (x cong) add(y cong) cong {
	if x.isTop() || y.isTop() {
		return congTop()
	}
	if x.isConst() && y.isConst() {
		return congConst(x.off + y.off)
	}
	m := minMod(x.mod, y.mod) // ≥ 2 here
	return cong{mod: m, off: (x.off + y.off) & (m - 1)}
}

// scale is the sound transfer for wrapping multiplication by the
// constant k (k may encode a negative int64 coefficient in two's
// complement; only its 2-adic valuation matters). From v ≡ off
// (mod 2^a): k·v ≡ k·off (mod 2^(a+v₂(k))); when a+v₂(k) ≥ 64 the
// product is determined modulo 2^64, i.e. an exact constant.
func (x cong) scale(k uint64) cong {
	if k == 0 {
		return congConst(0)
	}
	if x.isConst() {
		return congConst(x.off * k)
	}
	a := bits.TrailingZeros64(x.mod) // top has mod 1 → a = 0
	b := bits.TrailingZeros64(k)
	if a+b >= 64 {
		return congConst(x.off * k)
	}
	m := uint64(1) << (a + b)
	if m == 1 {
		return congTop()
	}
	return cong{mod: m, off: (x.off * k) & (m - 1)}
}

// maskLow is the transfer for v & mask. A low-bit mask (2^k - 1)
// truncates the value modulo 2^k; any other mask still forces the
// bits below its lowest set bit to zero.
func (x cong) maskLow(mask uint64) cong {
	if mask == 0 {
		return congConst(0)
	}
	if (mask+1)&mask == 0 && mask+1 != 0 { // mask = 2^k - 1
		k := uint64(mask + 1)
		if x.isConst() {
			return congConst(x.off & mask)
		}
		if !x.isTop() && x.mod > k {
			// v ≡ off (mod 2^a) with a > k determines v mod 2^k exactly.
			return congConst(x.off & mask)
		}
		m := minMod(x.mod, k)
		if m == 1 {
			return congTop()
		}
		return cong{mod: m, off: x.off & (m - 1)}
	}
	lb := mask & -mask
	if lb == 1 {
		return congTop()
	}
	return cong{mod: lb, off: 0}
}

// shr is the transfer for a logical right shift of a value known to be
// non-negative (the analyzer only mints shift symbols under that
// guard, where arithmetic and logical shifts agree). v = off + t·2^a
// with 0 ≤ off < 2^a gives v>>s = (off>>s) + t·2^(a-s) exactly.
func (x cong) shr(s uint64) cong {
	if s == 0 {
		return x
	}
	if x.isConst() {
		return congConst(x.off >> s)
	}
	if x.isTop() {
		return congTop()
	}
	a := uint64(bits.TrailingZeros64(x.mod))
	if a <= s {
		return congTop()
	}
	m := x.mod >> s
	return cong{mod: m, off: (x.off & (x.mod - 1)) >> s}
}

// congStep enumerates the members of r ∩ c: the first member, the
// step between members, and the member count. Moduli above 2^32 are
// weakened to 2^32 first — weakening a congruence only adds values,
// which keeps the enumeration a sound over-approximation while the
// int64 stepping below stays overflow-free.
func congStep(r ival, c cong) (start, step, count int64) {
	if r.empty() {
		return 0, 1, 0
	}
	if c.isConst() {
		v := int64(c.off)
		if r.contains(v) {
			return v, 1, 1
		}
		return 0, 1, 0
	}
	m := c.mod
	if m > 1<<32 {
		m = 1 << 32
	}
	if m == 1 {
		return r.lo, 1, r.hi - r.lo + 1
	}
	delta := (c.off - uint64(r.lo)) & (m - 1)
	start = r.lo + int64(delta)
	if start > r.hi {
		return 0, 1, 0
	}
	step = int64(m)
	count = (r.hi-start)/step + 1
	return start, step, count
}

// Derived-symbol kinds (pc-keyed symbols minted by the transfer
// functions for results that leave the affine domain but keep a
// bounded range and a congruence: AND-masks, right shifts, divides).
const (
	drvNone uint8 = iota
	drvAnd
	drvShr
	drvDiv
)

// congOfExpr evaluates an affine expression's congruence over the
// per-symbol congruence table. ok is false while the expression
// references a symbol the solver has not valued yet.
func (a *analyzer) congOfExpr(e Expr, table []cong, set []bool) (cong, bool) {
	if e.top {
		return congTop(), true
	}
	acc := congConst(uint64(e.c))
	for _, t := range e.terms {
		s := int(t.sym)
		var sc cong
		switch {
		case s < int(symFirstPhi):
			sc = congTop() // thread coordinates range over contiguous ids
		case s < len(table) && set[s]:
			sc = table[s]
		default:
			return congTop(), false
		}
		acc = acc.add(sc.scale(uint64(t.coef)))
	}
	return acc, true
}

// drvTransfer applies a derived symbol's operation to its source
// congruence.
func drvTransfer(kind uint8, param int64, src cong) cong {
	switch kind {
	case drvAnd:
		return src.maskLow(uint64(param))
	case drvShr:
		return src.shr(uint64(param) & 63)
	case drvDiv:
		d := uint64(param)
		if d != 0 && d&(d-1) == 0 {
			// Power-of-two divide of a non-negative value is a shift.
			return src.shr(uint64(bits.TrailingZeros64(d)))
		}
		return congTop()
	}
	return congTop()
}

// solveCong computes the congruence of every φ and derived symbol by
// Kleene iteration from the recorded input expressions. φ inputs can
// reference other φs (loop-carried counters), so the system is solved
// to a fixpoint; joins are monotone over finite power-of-two divisor
// chains, so it terminates in at most ~64 coarsenings per symbol.
func (a *analyzer) solveCong() {
	n := len(a.syms)
	a.symCong = make([]cong, n)
	set := make([]bool, n)
	for s := 0; s < int(symFirstPhi) && s < n; s++ {
		a.symCong[s] = congTop()
		set[s] = true
	}
	for round := 0; round < 66; round++ {
		changed := false
		for s := int(symFirstPhi); s < n; s++ {
			var nv cong
			have := false
			if a.symIn[s].over {
				nv, have = congTop(), true
			} else {
				for _, e := range a.symIn[s].exprs {
					c, ok := a.congOfExpr(e, a.symCong, set)
					if !ok {
						continue
					}
					if kind := a.symIn[s].kind; kind != drvNone {
						c = drvTransfer(kind, a.symIn[s].param, c)
					}
					if !have {
						nv, have = c, true
					} else {
						nv = nv.join(c)
					}
				}
			}
			if !have {
				continue
			}
			if set[s] {
				nv = a.symCong[s].join(nv)
			}
			if !set[s] || nv != a.symCong[s] {
				a.symCong[s] = nv
				set[s] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for s := int(symFirstPhi); s < n; s++ {
		if !set[s] {
			a.symCong[s] = congTop()
		}
	}
}

// congOf is the post-solve congruence of one symbol.
func (a *analyzer) congOf(s symID) cong {
	if int(s) < len(a.symCong) {
		return a.symCong[s]
	}
	return congTop()
}

// symInputs records where a φ or derived symbol's values come from:
// the joined input expressions (φ) or the operation source (derived,
// with kind/param naming the operation). Deduplicated and capped —
// past the cap the symbol is pessimized to top.
type symInputs struct {
	exprs []Expr
	kind  uint8
	param int64
	over  bool
}

const maxSymInputs = 16

func (si *symInputs) record(e Expr) {
	if si.over {
		return
	}
	for _, x := range si.exprs {
		if x.equal(e) {
			return
		}
	}
	if len(si.exprs) >= maxSymInputs {
		si.over = true
		si.exprs = nil
		return
	}
	si.exprs = append(si.exprs, e)
}
