package staticrace

import (
	"math/rand"
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
	"haccrg/internal/kernels"
)

// randCong returns a random congruence that contains v: the exact
// constant, top, or v modulo a random power of two.
func randCong(r *rand.Rand, v uint64) cong {
	switch r.Intn(4) {
	case 0:
		return congConst(v)
	case 1:
		return congTop()
	}
	k := uint(1 + r.Intn(63))
	m := uint64(1) << k
	return cong{mod: m, off: v & (m - 1)}
}

// sample returns concrete members of c, spread across the value space.
func sample(r *rand.Rand, c cong, n int) []uint64 {
	if c.isConst() {
		return []uint64{c.off}
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		v := r.Uint64()
		if !c.isTop() {
			v = (v &^ (c.mod - 1)) | (c.off & (c.mod - 1))
		}
		out = append(out, v)
	}
	return out
}

// TestCongJoinUpperBound: join is an upper bound of both operands —
// every member of either side stays a member of the join — and obeys
// the lattice laws (idempotent, commutative, top-absorbing).
func TestCongJoinUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		x, y := randCong(r, r.Uint64()), randCong(r, r.Uint64())
		j := x.join(y)
		for _, v := range sample(r, x, 8) {
			if !j.contains(v) {
				t.Fatalf("join dropped member: %+v ∨ %+v = %+v misses %d from x", x, y, j, v)
			}
		}
		for _, v := range sample(r, y, 8) {
			if !j.contains(v) {
				t.Fatalf("join dropped member: %+v ∨ %+v = %+v misses %d from y", x, y, j, v)
			}
		}
		if x.join(x) != x {
			t.Fatalf("join not idempotent: %+v", x)
		}
		if j != y.join(x) {
			t.Fatalf("join not commutative: %+v ∨ %+v", x, y)
		}
		if !x.join(congTop()).isTop() {
			t.Fatalf("top not absorbing under join: %+v", x)
		}
	}
}

// TestCongJoinWidens: join doubles as the widening — along any chain
// of repeated joins the abstract value can only coarsen, and it
// changes at most ~65 times (the power-of-two divisor chain height),
// which is the termination argument solveCong relies on.
func TestCongJoinWidens(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		acc := randCong(r, r.Uint64())
		changes := 0
		for i := 0; i < 500; i++ {
			prev := acc
			acc = acc.join(randCong(r, r.Uint64()))
			// Monotone: everything the old value admitted survives.
			for _, v := range sample(r, prev, 4) {
				if !acc.contains(v) {
					t.Fatalf("widening lost member %d: %+v → %+v", v, prev, acc)
				}
			}
			if acc != prev {
				changes++
			}
		}
		if changes > 65 {
			t.Fatalf("join chain changed %d times; divisor chains bound it by 65", changes)
		}
	}
}

// TestCongTransferSoundness: each transfer function over-approximates
// the concrete operation. For random concrete inputs wrapped in random
// congruences that contain them, the abstract result must contain the
// concrete result — including under uint64 wrap-around.
func TestCongTransferSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for i := 0; i < 20000; i++ {
		v, w := r.Uint64(), r.Uint64()
		cv, cw := randCong(r, v), randCong(r, w)
		if !cv.contains(v) || !cw.contains(w) {
			t.Fatalf("randCong broke containment: %+v %d / %+v %d", cv, v, cw, w)
		}
		if got := cv.add(cw); !got.contains(v + w) {
			t.Fatalf("add unsound: %+v + %+v = %+v misses %d", cv, cw, got, v+w)
		}
		k := r.Uint64()
		if got := cv.scale(k); !got.contains(v * k) {
			t.Fatalf("scale unsound: %+v · %d = %+v misses %d", cv, k, got, v*k)
		}
		mask := r.Uint64()
		if r.Intn(2) == 0 {
			mask = 1<<uint(r.Intn(64)) - 1 // low-bit mask half the time
		}
		if got := cv.maskLow(mask); !got.contains(v & mask) {
			t.Fatalf("maskLow unsound: %+v & %#x = %+v misses %d", cv, mask, got, v&mask)
		}
		s := uint64(r.Intn(64))
		if got := cv.shr(s); !got.contains(v >> s) {
			t.Fatalf("shr unsound: %+v >> %d = %+v misses %d", cv, s, got, v>>s)
		}
	}
}

// TestCongStepEnumeratesIntersection: congStep's (start, step, count)
// progression is exactly the members of range ∩ congruence, checked
// against brute-force enumeration on small ranges.
func TestCongStepEnumeratesIntersection(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		lo := int64(r.Intn(4000) - 1000)
		rg := ival{lo, lo + int64(r.Intn(600))}
		var c cong
		switch r.Intn(3) {
		case 0:
			c = congConst(uint64(lo + int64(r.Intn(1200)) - 300))
		case 1:
			c = congTop()
		default:
			m := uint64(1) << uint(1+r.Intn(8))
			c = cong{mod: m, off: r.Uint64() & (m - 1)}
		}
		var want []int64
		for v := rg.lo; v <= rg.hi; v++ {
			if c.contains(uint64(v)) {
				want = append(want, v)
			}
		}
		start, step, count := congStep(rg, c)
		if count != int64(len(want)) {
			t.Fatalf("congStep(%+v, %+v) count = %d, brute force %d", rg, c, count, len(want))
		}
		for j := int64(0); j < count; j++ {
			if got := start + j*step; got != want[j] {
				t.Fatalf("congStep(%+v, %+v) member %d = %d, brute force %d", rg, c, j, got, want[j])
			}
		}
	}
}

// TestStrideCollapseOnFixtures: with the footprint point budget
// crushed to 1, no site can enumerate — but pure tid-strided shared
// stores in the defective fixtures must still collapse to the analytic
// strided form and classify private, rather than poisoning the space
// to unknown. The budget bounds work, not precision, on these shapes.
func TestStrideCollapseOnFixtures(t *testing.T) {
	for _, name := range []string{"baddiv", "badoob"} {
		name := name
		t.Run(name, func(t *testing.T) {
			bm := kernels.Get(name)
			if bm == nil {
				t.Fatalf("unknown fixture %q", name)
			}
			cfg := gpu.TestConfig()
			dev, err := gpu.NewDevice(cfg, bm.GlobalBytes(1), nil)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := bm.Build(dev, kernels.Params{})
			if err != nil {
				t.Fatal(err)
			}
			conf := Config{WarpSize: 32, SharedGranularity: 4, GlobalGranularity: 4,
				MaxFootprintPoints: 1}
			for _, k := range plan.Kernels {
				res, err := Analyze(k, conf)
				if err != nil {
					t.Fatalf("kernel %s: %v", k.Name, err)
				}
				stores := 0
				for _, s := range res.Sites {
					if s.Space != isa.SpaceShared.String() || s.Op != "st" || s.Dead {
						continue
					}
					stores++
					if s.Class != ClassPrivate {
						t.Errorf("kernel %s pc %d: shared St classified %q under budget 1, want %q",
							k.Name, s.PC, s.Class, ClassPrivate)
					}
				}
				if stores == 0 {
					t.Errorf("kernel %s: no live shared St sites found", k.Name)
				}
			}
		})
	}
}
