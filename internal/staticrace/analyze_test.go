package staticrace_test

import (
	"testing"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
	"haccrg/internal/kernels"
	"haccrg/internal/staticrace"
)

func testConf() staticrace.Config {
	return staticrace.Config{WarpSize: 32, SharedGranularity: 4, GlobalGranularity: 4}
}

// planFor builds a benchmark's launch plan on a small device.
func planFor(t testing.TB, name string, p kernels.Params) *kernels.Plan {
	t.Helper()
	bm := kernels.Get(name)
	if bm == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	cfg := gpu.TestConfig()
	dev, err := gpu.NewDevice(cfg, bm.GlobalBytes(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestCleanBenchmarksHaveNoFindings is the analyzer's false-positive
// gate: every clean built-in benchmark must analyze without findings.
func TestCleanBenchmarksHaveNoFindings(t *testing.T) {
	for _, bm := range kernels.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			plan := planFor(t, bm.Name, kernels.Params{})
			for _, k := range plan.Kernels {
				res, err := staticrace.Analyze(k, testConf())
				if err != nil {
					t.Fatalf("kernel %s: %v", k.Name, err)
				}
				for _, f := range res.Findings {
					t.Errorf("kernel %s pc %d: unexpected [%s] %s", k.Name, f.PC, f.Pass, f.Msg)
				}
			}
		})
	}
}

// TestDefectiveFixturesFlag: each deliberately-defective fixture must
// raise at least one finding from the matching pass.
func TestDefectiveFixturesFlag(t *testing.T) {
	want := map[string]string{
		"baddiv":   staticrace.PassBarrierDivergence,
		"badfence": staticrace.PassFenceMisuse,
		"badoob":   staticrace.PassSharedOOB,
	}
	for name, pass := range want {
		t.Run(name, func(t *testing.T) {
			plan := planFor(t, name, kernels.Params{})
			found := false
			for _, k := range plan.Kernels {
				res, err := staticrace.Analyze(k, testConf())
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range res.Findings {
					t.Logf("pc %d: [%s] %s", f.PC, f.Pass, f.Msg)
					if f.Pass == pass {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("fixture %s: no %s finding", name, pass)
			}
		})
	}
}

// TestProverClassifiesPsum pins the prover's headline result: psum's
// grid-stride input loads and per-thread output stores are provably
// race-free, so the detector can skip them.
func TestProverClassifiesPsum(t *testing.T) {
	plan := planFor(t, "psum", kernels.Params{})
	f, err := staticrace.NewFilter(testConf(), plan.Kernels...)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range plan.Kernels {
		pcs := f.FilteredPCs(k.Name)
		t.Logf("kernel %s: filtered pcs %v", k.Name, pcs)
		if len(pcs) == 0 {
			t.Errorf("kernel %s: expected at least one filterable site", k.Name)
		}
	}
	filterable, total := f.FilterableSites()
	t.Logf("filterable %d / %d sites", filterable, total)
	if filterable == 0 {
		t.Fatal("no filterable sites in psum")
	}
}

// TestCFGPartition: every instruction of every built-in kernel lands
// in exactly one basic block.
func TestCFGPartition(t *testing.T) {
	for _, bm := range kernels.AllIncludingDefective() {
		plan := planFor(t, bm.Name, kernels.Params{})
		for _, k := range plan.Kernels {
			g, err := staticrace.BuildCFG(k.Prog)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			covered := make([]int, len(k.Prog.Code))
			for _, b := range g.Blocks {
				if b.Start >= b.End {
					t.Fatalf("%s: empty block %d", k.Name, b.Index)
				}
				for pc := b.Start; pc < b.End; pc++ {
					covered[pc]++
				}
			}
			for pc, n := range covered {
				if n != 1 {
					t.Fatalf("%s: pc %d in %d blocks", k.Name, pc, n)
				}
			}
		}
	}
}

// TestAnalyzeDivergentBarrierDirect exercises the barrier lint on a
// hand-built program (independent of the fixture registration).
func TestAnalyzeDivergentBarrierDirect(t *testing.T) {
	b := isa.NewBuilder("divbar")
	b.Sreg(1, isa.SregTid)
	b.Setpi(0, isa.CmpLT, 1, 16)
	b.If(0)
	b.Bar()
	b.EndIf()
	prog := b.MustBuild()
	k := &gpu.Kernel{Name: "divbar", Prog: prog, GridDim: 1, BlockDim: 64, SharedBytes: 0}
	res, err := staticrace.Analyze(k, testConf())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range res.Findings {
		if f.Pass == staticrace.PassBarrierDivergence {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected barrier-divergence finding, got %+v", res.Findings)
	}
	// The same program with a uniform condition must be clean.
	b2 := isa.NewBuilder("unibar")
	b2.Sreg(1, isa.SregCtaid)
	b2.Setpi(0, isa.CmpEQ, 1, 0)
	b2.If(0)
	b2.Bar()
	b2.EndIf()
	k2 := &gpu.Kernel{Name: "unibar", Prog: b2.MustBuild(), GridDim: 2, BlockDim: 64}
	res2, err := staticrace.Analyze(k2, testConf())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Findings) != 0 {
		t.Fatalf("uniform barrier flagged: %+v", res2.Findings)
	}
}
