package staticrace_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
	"haccrg/internal/kernels"
	"haccrg/internal/staticrace"
)

// witnessConf mirrors the full detector default configuration,
// including warp-awareness — a witness must only claim races the
// dynamic detector would actually report.
func witnessConf() staticrace.Config {
	conf := detectorConf()
	conf.WarpAware = core.DefaultOptions().WarpAware
	return conf
}

// TestWitnessDifferentialSoundness is the witness prover's soundness
// sweep: over a randomized corpus, (a) the checker never reports a
// proof/witness conflict, (b) nothing unverified ships, (c) no race
// witness lands on a pc the prover simultaneously filters, and (d)
// every verified global race witness is reproduced by the dynamic
// detector — a race on the same (space, granule) — on an unfiltered,
// uncapped run.
func TestWitnessDifferentialSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	conf := witnessConf()
	analyzed, witnessed := 0, 0
	for n := 0; n < 60; n++ {
		data := make([]byte, 40+rng.Intn(60))
		rng.Read(data)
		k := genKernel(fmt.Sprintf("wdiff%03d", n), data)
		if k == nil {
			continue
		}
		f, err := staticrace.NewFilter(conf, k)
		if err != nil {
			t.Fatalf("sample %d: analysis failed: %v\n%s", n, err, k.Prog.Disassemble())
		}
		analyzed++
		a := f.Analyses()[0]
		if a.Conflicts != 0 {
			t.Errorf("sample %d: %d race-free proofs coexist with witnesses\n%s",
				n, a.Conflicts, k.Prog.Disassemble())
		}
		mask := f.FilterSites(k.Name)
		var raceWits []staticrace.Witness
		for _, w := range a.Witnesses {
			if !w.Verified {
				t.Errorf("sample %d: unverified %s witness shipped (pc %d)\n%s",
					n, w.Kind, w.PC, k.Prog.Disassemble())
			}
			if w.Kind != staticrace.WitnessRace {
				continue
			}
			raceWits = append(raceWits, w)
			for _, pc := range []int{w.PC, w.PC2} {
				if pc >= 0 && pc < len(mask) && mask[pc] {
					t.Errorf("sample %d: race witness at pc %d on a site the filter skips\n%s",
						n, pc, k.Prog.Disassemble())
				}
			}
		}
		if len(raceWits) == 0 {
			continue
		}
		witnessed++
		det := launchWithDetector(t, k, nil, false)
		dyn := map[string]bool{}
		for _, r := range det.SortedRaces() {
			dyn[fmt.Sprintf("%s/g%d", r.Space, r.Granule)] = true
		}
		for _, w := range raceWits {
			if w.Space != isa.SpaceGlobal.String() {
				continue
			}
			if key := fmt.Sprintf("%s/g%d", w.Space, w.Granule); !dyn[key] {
				t.Errorf("sample %d: witness %s (class %s, pc %d/%d, threads (b%d,t%d)/(b%d,t%d)) not reproduced dynamically\n%s",
					n, key, w.Class, w.PC, w.PC2, w.Block, w.Tid, w.Block2, w.Tid2,
					k.Prog.Disassemble())
			}
		}
	}
	if analyzed < 30 {
		t.Fatalf("only %d samples survived generation; corpus too thin", analyzed)
	}
	if witnessed == 0 {
		t.Fatal("no random sample produced a race witness; the differential oracle never bit")
	}
	t.Logf("%d samples analyzed, %d carried race witnesses", analyzed, witnessed)
}

// seedAdapter exposes a Filter's verified race witnesses as detector
// seeds, mirroring the harness wiring.
type seedAdapter struct{ f *staticrace.Filter }

func (s seedAdapter) WitnessSeeds(kernel string) []core.SeedWitness {
	var out []core.SeedWitness
	for _, w := range s.f.RaceSeeds(kernel) {
		out = append(out, core.SeedWitness{
			Space: isa.SpaceGlobal, Granule: w.Granule, Class: w.Class,
			PC: w.PC, PC2: w.PC2,
			Block: w.Block, Tid: w.Tid, Block2: w.Block2, Tid2: w.Tid2,
		})
	}
	return out
}

// provSummary renders races including provenance for exact comparison.
func provSummary(races []*core.Race) string {
	var sb strings.Builder
	for _, r := range races {
		fmt.Fprintf(&sb, "%s/%s/%s/pc%d/g%d/%d-%d x%d prov=%q\n",
			r.Space, r.Kind, r.Category, r.PC, r.Granule, r.FirstTid, r.SecondTid, r.Count, r.Provenance)
	}
	return sb.String()
}

// runSeeded launches a plan's kernels in order under one seeded
// detector and returns the provenance-tagged findings summary.
func runSeeded(t *testing.T, plan *kernels.Plan, f *staticrace.Filter,
	mut func(*core.Options)) (string, []*core.Race) {
	t.Helper()
	opt := core.DefaultOptions()
	if mut != nil {
		mut(&opt)
	}
	det := core.MustNew(opt)
	det.SetWitnessSeeds(seedAdapter{f})
	dev, err := gpu.NewDevice(gpu.TestConfig(), 1<<20, det)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range plan.Kernels {
		if _, err := dev.LaunchContext(context.Background(), k, gpu.LaunchLimits{MaxCycles: 50_000_000}); err != nil {
			t.Fatalf("launch %s: %v", k.Name, err)
		}
	}
	races := det.SortedRaces()
	return provSummary(races), races
}

// TestWitnessSeededFindingsIdentical: pre-seeding the RDU with static
// witnesses must report every seeded granule with StaticWitness
// provenance on first touch, and the findings — seeds included — must
// stay byte-identical across the serial, sharded-global, and
// sharded-shared engines, including under a worker-stall fault plan.
func TestWitnessSeededFindingsIdentical(t *testing.T) {
	plan := planFor(t, "scan", kernels.Params{})
	f, err := staticrace.NewFilter(witnessConf(), plan.Kernels...)
	if err != nil {
		t.Fatal(err)
	}
	seeds := 0
	for _, k := range plan.Kernels {
		seeds += len(f.RaceSeeds(k.Name))
	}
	if seeds == 0 {
		t.Fatal("scan produced no verified race seeds; the seeding path is untested")
	}

	base, races := runSeeded(t, plan, f, nil)
	seeded := 0
	for _, r := range races {
		if r.Provenance == "StaticWitness" {
			seeded++
		}
	}
	if seeded == 0 {
		t.Fatalf("no finding carries StaticWitness provenance; seeds never fired\n%s", base)
	}

	engines := map[string]func(*core.Options){
		"parallel":        func(o *core.Options) { o.Parallel = true },
		"parallel-shared": func(o *core.Options) { o.Parallel = true; o.ParallelShared = true },
		"stall-fault": func(o *core.Options) {
			o.Parallel = true
			o.StallBudget = time.Second
			var stalled atomic.Bool
			o.Chaos = &core.ChaosHooks{
				WorkerStall: func(part int) {
					if stalled.CompareAndSwap(false, true) {
						time.Sleep(2 * time.Millisecond)
					}
				},
			}
		},
	}
	for name, mut := range engines {
		got, _ := runSeeded(t, plan, f, mut)
		if got != base {
			t.Errorf("%s engine diverged from serial seeded findings\ngot:\n%s\nwant:\n%s", name, got, base)
		}
	}
	t.Logf("%d seeds, %d seeded findings, identical across %d engine variants", seeds, seeded, len(engines))
}
