package staticrace

import (
	"sort"

	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// Fixpoint tuning. widenAfter bounds how many times a block may be
// re-joined before growing symbol ranges are widened (to the next
// comparison-derived threshold, then ±∞); hardCap
// forces still-unstable values to Top so the iteration always
// terminates (adversarial programs from the fuzzer can otherwise
// alternate forever).
const (
	widenAfter = 8
	hardCap    = 64
)

// predval is the abstract value of a predicate register.
//
// When hasCond is set the predicate was produced by a SETP whose
// operand difference is affine: pred == true  ⇔  diff cmp 0. The
// condition survives even when the truth value is known (known/val),
// because edge refinement fixes the value along a path while the
// condition is still what the lints inspect.
type predval struct {
	known   bool
	val     bool
	hasCond bool
	diff    Expr
	cmp     isa.CmpOp

	// Source form of the SETP that produced the condition, kept while
	// neither operand register has been overwritten (live). Joins use it
	// to re-derive the condition over the merged registers: at a loop
	// head the counter register maps to its φ, so the guard becomes
	// "φ - bound cmp 0" and edge refinement can bound the φ range —
	// without this, loop-exit guards die at the head join and counter
	// ranges widen to ±∞, making every footprint in the body unknown.
	live   bool
	srcA   isa.Reg
	srcB   isa.Reg
	useImm bool
	imm    int64
}

func (p predval) equal(o predval) bool {
	return p.known == o.known && p.val == o.val &&
		p.hasCond == o.hasCond && p.cmp == o.cmp && p.diff.equal(o.diff) &&
		p.live == o.live && p.srcA == o.srcA && p.srcB == o.srcB &&
		p.useImm == o.useImm && p.imm == o.imm
}

// sameSource reports that two predicate values were produced by the
// same still-live SETP comparison.
func (p predval) sameSource(o predval) bool {
	return p.live && o.live && p.cmp == o.cmp && p.srcA == o.srcA &&
		p.useImm == o.useImm &&
		((p.useImm && p.imm == o.imm) || (!p.useImm && p.srcB == o.srcB))
}

// state is the abstract machine state at a program point: one Expr per
// register, one predval per predicate, and an interval per symbol.
// approx records that the path to this point crossed a predicated
// branch whose condition could not be refined — footprints are still
// over-approximations, but "definite" lints (shared OOB) must not
// fire from such states.
type state struct {
	regs   [isa.NumRegs]Expr
	preds  [isa.NumPreds]predval
	ranges []ival
	approx bool
}

func (s *state) clone() *state {
	c := *s
	c.ranges = append([]ival(nil), s.ranges...)
	return &c
}

// symInfo is analyzer-side metadata for one symbol.
type symInfo struct {
	name   string
	tidDep bool // value is definitely a non-constant function of the thread id
}

type phiKey struct {
	block int
	reg   int // register number; predicates use NumRegs+p
}

// analyzer runs the abstract interpretation for one launched kernel.
type analyzer struct {
	prog *isa.Program
	cfg  *CFG
	k    *gpu.Kernel
	conf Config

	syms   []symInfo
	symMax []ival // widest range ever recorded per symbol (join fallback)
	phis   map[phiKey]symID
	drvs   map[int]symID // pc -> derived symbol (AND-mask / SHR / DIV results)

	// Congruence solver state: per-symbol recorded inputs and the
	// solved stride/offset congruences (see cong.go).
	symIn   []symInputs
	symCong []cong

	// Barrier-epoch reachability, built on first use (see epoch.go).
	epochs *epochInfo

	// Widening thresholds: sorted constants harvested from the
	// program's comparisons and the launch geometry. A growing range is
	// widened to the next threshold instead of ±∞, so a counted loop's
	// φ stabilizes at its guard bound and stays finite — which both
	// keeps footprints enumerable and lets assume() refine the guard
	// (its wrap check rejects unbounded intervals).
	thresholds []int64

	in     []*state
	visits []int

	// Final-pass products.
	sites   map[int]*siteAcc // mem pc -> access summary
	brPred  map[int]predval  // predicated branch/exit pc -> guard value
	reached []bool
}

// siteAcc summarizes one shared/global LD/ST/ATOM site after the
// fixpoint: the affine address and the symbol ranges that held when
// the site executes (path and guard refinements applied).
type siteAcc struct {
	pc     int
	space  isa.Space
	write  bool
	atomic bool
	size   int
	dead   bool // provably never executed
	approx bool // reached under an unrefinable condition
	addr   Expr
	ranges []ival
}

func newAnalyzer(k *gpu.Kernel, cfg *CFG, conf Config) *analyzer {
	a := &analyzer{
		prog:   cfg.Prog,
		cfg:    cfg,
		k:      k,
		conf:   conf,
		phis:   map[phiKey]symID{},
		drvs:   map[int]symID{},
		in:     make([]*state, len(cfg.Blocks)),
		visits: make([]int, len(cfg.Blocks)),
		sites:  map[int]*siteAcc{},
		brPred: map[int]predval{},
	}
	ws := int64(conf.WarpSize)
	bd, gd := int64(k.BlockDim), int64(k.GridDim)
	nwarps := (bd + ws - 1) / ws
	a.syms = []symInfo{
		{name: "tid", tidDep: true},
		{name: "bid", tidDep: false},
		{name: "lane", tidDep: true},
		{name: "warp", tidDep: true},
	}
	a.symMax = []ival{
		{0, bd - 1},
		{0, gd - 1},
		{0, minI64(ws, bd) - 1},
		{0, nwarps - 1},
	}
	seen := map[int64]bool{}
	add := func(v int64) {
		for _, d := range [...]int64{-1, 0, 1} {
			if t := v + d; !seen[t] {
				seen[t] = true
				a.thresholds = append(a.thresholds, t)
			}
		}
	}
	add(0)
	add(bd)
	add(gd)
	add(bd * gd)
	for i := range a.prog.Code {
		if in := &a.prog.Code[i]; in.Op == isa.OpSetp && in.UseImm {
			add(in.Imm)
		}
	}
	sort.Slice(a.thresholds, func(i, j int) bool { return a.thresholds[i] < a.thresholds[j] })
	a.symIn = make([]symInputs, len(a.syms))
	return a
}

// widenLo is the largest threshold ≤ v (or -∞); widenHi the smallest
// threshold ≥ v (or +∞).
func (a *analyzer) widenLo(v int64) int64 {
	i := sort.Search(len(a.thresholds), func(i int) bool { return a.thresholds[i] > v })
	if i == 0 {
		return negInf
	}
	return a.thresholds[i-1]
}

func (a *analyzer) widenHi(v int64) int64 {
	i := sort.Search(len(a.thresholds), func(i int) bool { return a.thresholds[i] >= v })
	if i == len(a.thresholds) {
		return posInf
	}
	return a.thresholds[i]
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (a *analyzer) newPhi(key phiKey) symID {
	if s, ok := a.phis[key]; ok {
		return s
	}
	s := symID(len(a.syms))
	// tidDep starts optimistic and is demoted at joins whenever an
	// input is not definitely tid-dependent (greatest fixpoint, so a
	// loop-carried φ referencing itself converges).
	a.syms = append(a.syms, symInfo{name: "phi", tidDep: true})
	a.symMax = append(a.symMax, ival{posInf, negInf}) // empty until first union
	a.symIn = append(a.symIn, symInputs{})
	a.phis[key] = s
	return s
}

// newDrv mints (or reuses) the pc-keyed derived symbol for an
// operation whose result leaves the affine domain but keeps a bounded
// interval and a congruence (AND-mask, right shift, divide by a
// positive constant). The interval r is the operation's sound result
// range at this visit; the congruence is solved afterwards from the
// recorded source expressions (see solveCong). Derived symbols are
// never marked tid-dependent — the flag backs definite lints, and a
// masked value may collapse to a constant for every thread.
func (a *analyzer) newDrv(pc int, kind uint8, param int64, src Expr, r ival, st *state) Expr {
	s, ok := a.drvs[pc]
	if !ok {
		s = symID(len(a.syms))
		a.syms = append(a.syms, symInfo{name: "drv", tidDep: false})
		a.symMax = append(a.symMax, ival{posInf, negInf})
		a.symIn = append(a.symIn, symInputs{kind: kind, param: param})
		a.drvs[pc] = s
	}
	si := &a.symIn[s]
	if si.kind != kind || si.param != param {
		si.over = true // same pc, different operation parameters: give up
	} else {
		si.record(src)
	}
	a.symMax[s] = a.symMax[s].union(r)
	a.setRange(st, s, r)
	return exprSym(s)
}

// rangeOf is the interval a state assigns to sym, falling back to the
// widest range ever seen when the state predates the symbol.
func (a *analyzer) rangeOf(st *state, s symID) ival {
	if int(s) < len(st.ranges) {
		return st.ranges[s]
	}
	if int(s) < len(a.symMax) {
		return a.symMax[s]
	}
	return ival{negInf, posInf}
}

func (a *analyzer) setRange(st *state, s symID, v ival) {
	for len(st.ranges) <= int(s) {
		grow := symID(len(st.ranges))
		st.ranges = append(st.ranges, a.symMax[grow])
	}
	st.ranges[s] = v
}

// intervalOf evaluates the expression over the state's symbol ranges.
func (a *analyzer) intervalOf(e Expr, st *state) ival {
	if e.top {
		return ival{negInf, posInf}
	}
	v := ival{e.c, e.c}
	for _, t := range e.terms {
		v = ivalAdd(v, ivalScale(a.rangeOf(st, t.sym), t.coef))
	}
	return v
}

// tidDep reports whether the expression definitely varies with the
// thread id (contains a tid-dependent symbol). Top is *not* tid-dep:
// the flag backs definite findings, so unknown must stay unknown.
func (a *analyzer) tidDep(e Expr) bool {
	if e.top {
		return false
	}
	for _, t := range e.terms {
		if a.syms[t.sym].tidDep {
			return true
		}
	}
	return false
}

// entryState is the executor's launch state: registers and predicates
// are zero, symbols carry their launch-geometry ranges.
func (a *analyzer) entryState() *state {
	st := &state{ranges: append([]ival(nil), a.symMax[:symFirstPhi]...)}
	for p := range st.preds {
		st.preds[p] = predval{known: true, val: false}
	}
	return st
}

// run iterates the dataflow to a fixpoint, then makes the final pass
// that records memory-site footprints and branch-guard values.
func (a *analyzer) run() {
	work := []int{0}
	a.in[0] = a.entryState()
	inWork := make([]bool, len(a.cfg.Blocks))
	inWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		a.visits[b]++
		st := a.in[b].clone()
		outs := a.transferBlock(b, st, nil)
		for _, o := range outs {
			if o.st == nil {
				continue
			}
			merged, changed := a.join(o.to, a.in[o.to], o.st)
			if changed {
				a.in[o.to] = merged
				if !inWork[o.to] {
					inWork[o.to] = true
					work = append(work, o.to)
				}
			}
		}
	}
	// Final pass over stable in-states: collect sites and guards.
	a.reached = make([]bool, len(a.cfg.Blocks))
	for b := range a.cfg.Blocks {
		if a.in[b] == nil {
			continue
		}
		a.reached[b] = true
		a.transferBlock(b, a.in[b].clone(), a)
	}
	// Solve symbol congruences from the inputs recorded across both the
	// fixpoint and the final pass (the final pass can record source
	// expressions the last worklist visit had not seen yet).
	a.solveCong()
}

type edgeOut struct {
	to int
	st *state
}

// transferBlock interprets one basic block from its in-state and
// returns the per-edge out-states. When collect is non-nil this is the
// final pass: memory sites and branch guards are recorded.
func (a *analyzer) transferBlock(b int, st *state, collect *analyzer) []edgeOut {
	blk := a.cfg.Blocks[b]
	for pc := blk.Start; pc < blk.End; pc++ {
		in := &a.prog.Code[pc]
		if pc == blk.End-1 && (in.Op == isa.OpBra || in.Op == isa.OpExit) {
			return a.transferTerminator(b, pc, in, st, collect)
		}
		a.transferInstr(pc, in, st, collect)
	}
	// Plain fall-through.
	outs := make([]edgeOut, 0, 1)
	for _, s := range blk.Succs {
		outs = append(outs, edgeOut{to: s, st: st})
	}
	return outs
}

// transferTerminator handles the block-ending branch or exit,
// producing refined edge states.
func (a *analyzer) transferTerminator(b, pc int, in *isa.Instr, st *state, collect *analyzer) []edgeOut {
	blk := a.cfg.Blocks[b]
	n := len(a.prog.Code)
	if in.Pred == isa.NoPred {
		if in.Op == isa.OpExit {
			return nil
		}
		// Unconditional branch.
		return []edgeOut{{to: a.cfg.BlockOf(in.Tgt), st: st}}
	}
	g := st.preds[in.Pred]
	if collect != nil {
		collect.brPred[pc] = g
	}
	tv := !in.PredNeg // predicate value for which the guard passes
	takenSt := a.assume(st, in.Pred, g, tv)
	fallSt := a.assume(st, in.Pred, g, !tv)
	var outs []edgeOut
	if in.Op == isa.OpExit {
		// Guard-true lanes retire; guard-false lanes fall through.
		if fallSt != nil && blk.End < n {
			outs = append(outs, edgeOut{to: a.cfg.BlockOf(blk.End), st: fallSt})
		}
		return outs
	}
	if takenSt != nil {
		outs = append(outs, edgeOut{to: a.cfg.BlockOf(in.Tgt), st: takenSt})
	}
	if fallSt != nil && blk.End < n {
		outs = append(outs, edgeOut{to: a.cfg.BlockOf(blk.End), st: fallSt})
	}
	return outs
}

// assume returns a copy of st in which predicate p holds value pv, or
// nil when that is provably impossible. Single-symbol affine
// conditions with bounded intervals refine the symbol's range; any
// weaker condition leaves ranges alone and marks the state approx.
func (a *analyzer) assume(st *state, p isa.Pred, g predval, pv bool) *state {
	if g.known {
		if g.val != pv {
			return nil
		}
		return st.clone()
	}
	c := st.clone()
	c.preds[p].known = true
	c.preds[p].val = pv
	if !g.hasCond {
		c.approx = true
		return c
	}
	cmp := g.cmp
	if !pv {
		cmp = negateCmp(cmp)
	}
	sym, k, cst, single := g.diff.singleTerm()
	if !single || !a.intervalOf(g.diff, st).bounded() {
		// Constant diffs were already folded to known by SETP; anything
		// multi-symbol or possibly-wrapping is left unrefined.
		c.approx = true
		return c
	}
	r, feasible := refineRange(a.rangeOf(c, sym), k, cst, cmp)
	if !feasible {
		return nil
	}
	a.setRange(c, sym, r)
	return c
}

func negateCmp(c isa.CmpOp) isa.CmpOp {
	switch c {
	case isa.CmpEQ:
		return isa.CmpNE
	case isa.CmpNE:
		return isa.CmpEQ
	case isa.CmpLT:
		return isa.CmpGE
	case isa.CmpLE:
		return isa.CmpGT
	case isa.CmpGT:
		return isa.CmpLE
	case isa.CmpGE:
		return isa.CmpLT
	}
	return c
}

// floorDiv is floor division for b > 0.
func floorDiv(m, b int64) int64 {
	q := m / b
	if m%b != 0 && m < 0 {
		q--
	}
	return q
}

// refineRange intersects r with the solution set of k·s + c cmp 0.
// Returns feasible=false when the intersection is empty. k must be
// nonzero; bounds are exact (no wrap: the caller checked the interval
// is bounded).
func refineRange(r ival, k, c int64, cmp isa.CmpOp) (ival, bool) {
	m := -c // k·s cmp m
	if k < 0 {
		k, m = -k, -m
		switch cmp {
		case isa.CmpLT:
			cmp = isa.CmpGT
		case isa.CmpLE:
			cmp = isa.CmpGE
		case isa.CmpGT:
			cmp = isa.CmpLT
		case isa.CmpGE:
			cmp = isa.CmpLE
		}
	}
	switch cmp {
	case isa.CmpLT: // k·s < m  ⇔  s ≤ floor((m-1)/k)
		r = r.intersect(ival{negInf, floorDiv(m-1, k)})
	case isa.CmpLE:
		r = r.intersect(ival{negInf, floorDiv(m, k)})
	case isa.CmpGT: // k·s > m  ⇔  s ≥ floor(m/k)+1
		r = r.intersect(ival{floorDiv(m, k) + 1, posInf})
	case isa.CmpGE: // k·s ≥ m  ⇔  s ≥ ceil(m/k)
		r = r.intersect(ival{floorDiv(m+k-1, k), posInf})
	case isa.CmpEQ:
		if m%k != 0 {
			return r, false
		}
		r = r.intersect(ival{m / k, m / k})
	case isa.CmpNE:
		if m%k == 0 {
			x := m / k
			if r.lo == x && r.hi == x {
				return r, false
			}
			if r.lo == x {
				r.lo++
			}
			if r.hi == x {
				r.hi--
			}
		}
	}
	return r, !r.empty()
}

// transferInstr applies one non-terminator instruction to the state.
// During the final pass (collect != nil) it also snapshots memory
// sites.
func (a *analyzer) transferInstr(pc int, in *isa.Instr, st *state, collect *analyzer) {
	// Guard handling: a known-false guard skips the instruction, a
	// known-true guard executes it normally, an unknown guard makes
	// every write a weak update.
	weak := false
	guardSt := st
	if in.Pred != isa.NoPred {
		g := st.preds[in.Pred]
		pv := !in.PredNeg
		if g.known {
			if g.val != pv {
				if collect != nil && in.IsMem() && (in.Space == isa.SpaceShared || in.Space == isa.SpaceGlobal) {
					collect.sites[pc] = &siteAcc{pc: pc, space: in.Space, dead: true}
				}
				return
			}
		} else {
			weak = true
			if collect != nil && in.IsMem() {
				// Site footprints see the guard as a path condition.
				if r := a.assume(st, in.Pred, g, pv); r != nil {
					guardSt = r
				} else {
					guardSt = nil
				}
			}
		}
	}
	if collect != nil && in.IsMem() && (in.Space == isa.SpaceShared || in.Space == isa.SpaceGlobal) {
		if guardSt == nil {
			collect.sites[pc] = &siteAcc{pc: pc, space: in.Space, dead: true}
		} else {
			s := &siteAcc{
				pc:     pc,
				space:  in.Space,
				write:  in.Op == isa.OpSt,
				atomic: in.Op == isa.OpAtom,
				size:   int(in.Size),
				approx: guardSt.approx,
				addr:   guardSt.regs[in.SrcA].addConst(in.Imm),
				ranges: append([]ival(nil), guardSt.ranges...),
			}
			collect.sites[pc] = s
		}
	}

	setReg := func(r isa.Reg, v Expr) {
		if weak {
			if !st.regs[r].equal(v) {
				st.regs[r] = exprTop()
			}
		} else if !st.regs[r].equal(v) {
			st.regs[r] = v
		} else {
			return // value unchanged: live conditions stay valid
		}
		for p := range st.preds {
			pd := &st.preds[p]
			if pd.live && (pd.srcA == r || (!pd.useImm && pd.srcB == r)) {
				pd.live = false
			}
		}
	}
	setPred := func(p isa.Pred, v predval) {
		if weak {
			if !st.preds[p].equal(v) {
				st.preds[p] = predval{}
			}
			return
		}
		st.preds[p] = v
	}
	src := func(r isa.Reg) Expr { return st.regs[r] }
	bval := func() Expr {
		if in.UseImm {
			return exprConst(in.Imm)
		}
		return src(in.SrcB)
	}

	switch in.Op {
	case isa.OpNop, isa.OpBar, isa.OpMembar, isa.OpAcqMark, isa.OpRelMark:
		// No register effects.
	case isa.OpMov:
		if in.UseImm {
			setReg(in.Dst, exprConst(in.Imm))
		} else {
			setReg(in.Dst, src(in.SrcA))
		}
	case isa.OpSreg:
		setReg(in.Dst, a.sregExpr(isa.SregKind(in.Imm)))
	case isa.OpSelp:
		pd := st.preds[in.PD]
		av, cv := src(in.SrcA), src(in.SrcC)
		switch {
		case pd.known && pd.val:
			setReg(in.Dst, av)
		case pd.known:
			setReg(in.Dst, cv)
		case av.equal(cv):
			setReg(in.Dst, av)
		default:
			setReg(in.Dst, exprTop())
		}
	case isa.OpAdd:
		setReg(in.Dst, src(in.SrcA).add(bval()))
	case isa.OpSub:
		setReg(in.Dst, src(in.SrcA).sub(bval()))
	case isa.OpMul:
		setReg(in.Dst, mulExpr(src(in.SrcA), bval()))
	case isa.OpMad:
		setReg(in.Dst, mulExpr(src(in.SrcA), bval()).add(src(in.SrcC)))
	case isa.OpDiv:
		av, aok := src(in.SrcA).Const()
		dv, dok := bval().Const()
		switch {
		case dok && dv == 0:
			setReg(in.Dst, exprConst(0)) // executor defines x/0 = 0
		case aok && dok && !(av == negInf && dv == -1):
			setReg(in.Dst, exprConst(av/dv))
		default:
			v := exprTop()
			if dok && dv > 0 {
				// Signed division of a non-negative value by a positive
				// constant is monotone, so the interval maps through.
				if iv := a.intervalOf(src(in.SrcA), st); iv.bounded() && iv.lo >= 0 {
					v = a.newDrv(pc, drvDiv, dv, src(in.SrcA), ival{iv.lo / dv, iv.hi / dv}, st)
				}
			}
			setReg(in.Dst, v)
		}
	case isa.OpRem:
		av, aok := src(in.SrcA).Const()
		dv, dok := bval().Const()
		switch {
		case dok && dv == 0:
			setReg(in.Dst, exprConst(0)) // executor defines x%0 = 0
		case aok && dok && dv != -1:
			setReg(in.Dst, exprConst(av%dv))
		case dok && dv == -1:
			setReg(in.Dst, exprConst(0))
		default:
			setReg(in.Dst, exprTop())
		}
	case isa.OpMin, isa.OpMax:
		av, aok := src(in.SrcA).Const()
		bv, bok := bval().Const()
		switch {
		case aok && bok && in.Op == isa.OpMin:
			setReg(in.Dst, exprConst(minI64(av, bv)))
		case aok && bok:
			setReg(in.Dst, exprConst(maxI64(av, bv)))
		case src(in.SrcA).equal(bval()):
			setReg(in.Dst, src(in.SrcA))
		default:
			setReg(in.Dst, exprTop())
		}
	case isa.OpAnd:
		e := a.andExpr(src(in.SrcA), bval(), st)
		if e.top {
			// Non-identity mask: the result leaves the affine domain but
			// stays in [0, mask] with the mask's congruence.
			xe, ye := src(in.SrcA), bval()
			if m, ok := ye.Const(); ok && m >= 0 {
				e = a.newDrv(pc, drvAnd, m, xe, ival{0, m}, st)
			} else if m, ok := xe.Const(); ok && m >= 0 {
				e = a.newDrv(pc, drvAnd, m, ye, ival{0, m}, st)
			}
		}
		setReg(in.Dst, e)
	case isa.OpOr, isa.OpXor:
		av, aok := src(in.SrcA).Const()
		bv, bok := bval().Const()
		switch {
		case aok && bok && in.Op == isa.OpOr:
			setReg(in.Dst, exprConst(av|bv))
		case aok && bok:
			setReg(in.Dst, exprConst(av^bv))
		case bok && bv == 0:
			setReg(in.Dst, src(in.SrcA))
		case aok && av == 0:
			setReg(in.Dst, bval())
		default:
			setReg(in.Dst, exprTop())
		}
	case isa.OpNot:
		if av, ok := src(in.SrcA).Const(); ok {
			setReg(in.Dst, exprConst(^av))
		} else {
			setReg(in.Dst, exprTop())
		}
	case isa.OpShl:
		bv, bok := bval().Const()
		av, aok := src(in.SrcA).Const()
		switch {
		case aok && bok:
			setReg(in.Dst, exprConst(int64(uint64(av)<<(uint64(bv)&63))))
		case bok:
			sh := uint64(bv) & 63
			if sh <= 62 {
				setReg(in.Dst, src(in.SrcA).scale(int64(1)<<sh))
			} else {
				setReg(in.Dst, exprTop())
			}
		default:
			setReg(in.Dst, exprTop())
		}
	case isa.OpShr:
		av, aok := src(in.SrcA).Const()
		bv, bok := bval().Const()
		switch {
		case aok && bok:
			setReg(in.Dst, exprConst(av>>(uint64(bv)&63)))
		case bok:
			v := exprTop()
			sh := uint64(bv) & 63
			// A provably non-negative source makes the executor's
			// arithmetic shift agree with the logical one, so the result
			// range and congruence are exact images of the source.
			if iv := a.intervalOf(src(in.SrcA), st); iv.bounded() && iv.lo >= 0 {
				v = a.newDrv(pc, drvShr, int64(sh), src(in.SrcA), ival{iv.lo >> sh, iv.hi >> sh}, st)
			}
			setReg(in.Dst, v)
		default:
			setReg(in.Dst, exprTop())
		}
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpFMin,
		isa.OpFMax, isa.OpFSqrt, isa.OpFExp, isa.OpFLog, isa.OpFSin,
		isa.OpFCos, isa.OpFAbs, isa.OpItoF, isa.OpFtoI:
		setReg(in.Dst, exprTop())
	case isa.OpSetp:
		diff := src(in.SrcA).sub(bval())
		pv := predval{}
		if !diff.top {
			pv.hasCond = true
			pv.diff = diff
			pv.cmp = in.Cmp
			pv.live = true
			pv.srcA, pv.srcB = in.SrcA, in.SrcB
			pv.useImm, pv.imm = in.UseImm, in.Imm
			iv := a.intervalOf(diff, st)
			if iv.bounded() {
				switch condEval(iv, in.Cmp) {
				case +1:
					pv.known, pv.val = true, true
				case -1:
					pv.known, pv.val = true, false
				}
			}
		}
		setPred(in.PD, pv)
	case isa.OpFSetp:
		setPred(in.PD, predval{})
	case isa.OpLd:
		v := exprTop()
		if in.Space == isa.SpaceParam {
			if c, ok := src(in.SrcA).addConst(in.Imm).Const(); ok {
				idx := int(uint64(c) / 8)
				if idx >= 0 && idx < len(a.k.Params) {
					v = exprConst(int64(a.k.Params[idx]))
				}
			}
		}
		setReg(in.Dst, v)
	case isa.OpSt:
		// No register effects.
	case isa.OpAtom:
		setReg(in.Dst, exprTop())
	default:
		if in.Dst < isa.NumRegs {
			setReg(in.Dst, exprTop())
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// condEval decides a comparison against 0 over a bounded interval:
// +1 all values satisfy it, -1 none do, 0 mixed.
func condEval(iv ival, cmp isa.CmpOp) int {
	all, none := false, false
	switch cmp {
	case isa.CmpEQ:
		all = iv.lo == 0 && iv.hi == 0
		none = iv.hi < 0 || iv.lo > 0
	case isa.CmpNE:
		all = iv.hi < 0 || iv.lo > 0
		none = iv.lo == 0 && iv.hi == 0
	case isa.CmpLT:
		all = iv.hi < 0
		none = iv.lo >= 0
	case isa.CmpLE:
		all = iv.hi <= 0
		none = iv.lo > 0
	case isa.CmpGT:
		all = iv.lo > 0
		none = iv.hi <= 0
	case isa.CmpGE:
		all = iv.lo >= 0
		none = iv.hi < 0
	}
	if all {
		return +1
	}
	if none {
		return -1
	}
	return 0
}

func (a *analyzer) sregExpr(k isa.SregKind) Expr {
	switch k {
	case isa.SregTid:
		return exprSym(SymTid)
	case isa.SregNtid:
		return exprConst(int64(a.k.BlockDim))
	case isa.SregCtaid:
		return exprSym(SymBid)
	case isa.SregNctaid:
		return exprConst(int64(a.k.GridDim))
	case isa.SregLane:
		return exprSym(SymLane)
	case isa.SregWarp:
		return exprSym(SymWarp)
	case isa.SregGtid:
		return exprSym(SymBid).scale(int64(a.k.BlockDim)).add(exprSym(SymTid))
	}
	return exprTop()
}

// mulExpr multiplies two abstract values; one side must be constant
// for the result to stay affine. Constant×constant folds with the
// executor's wrapping semantics.
func mulExpr(x, y Expr) Expr {
	xc, xok := x.Const()
	yc, yok := y.Const()
	switch {
	case xok && yok:
		return exprConst(xc * yc) // wraps exactly like the executor
	case xok:
		return y.scale(xc)
	case yok:
		return x.scale(yc)
	}
	return exprTop()
}

// andExpr folds x & mask: with a low-bit mask and a value provably in
// [0, mask], the AND is the identity.
func (a *analyzer) andExpr(x, y Expr, st *state) Expr {
	xc, xok := x.Const()
	yc, yok := y.Const()
	if xok && yok {
		return exprConst(xc & yc)
	}
	ident := func(v Expr, m int64) (Expr, bool) {
		if m >= 0 && m+1 > 0 && (m+1)&m == 0 { // m = 2^k - 1
			iv := a.intervalOf(v, st)
			if iv.bounded() && iv.lo >= 0 && iv.hi <= m {
				return v, true
			}
		}
		return Expr{}, false
	}
	if yok {
		if e, ok := ident(x, yc); ok {
			return e
		}
	}
	if xok {
		if e, ok := ident(y, xc); ok {
			return e
		}
	}
	return exprTop()
}

// join merges an incoming edge state into a block's in-state.
// Divergent registers become φ-symbols keyed by (block, register), so
// loop-carried values converge to a single symbol whose range is
// widened when it keeps growing.
func (a *analyzer) join(block int, old, edge *state) (*state, bool) {
	if old == nil {
		return edge.clone(), true
	}
	visits := a.visits[block]
	merged := old.clone()
	changed := false
	for r := 0; r < isa.NumRegs; r++ {
		oe, ne := old.regs[r], edge.regs[r]
		if oe.equal(ne) {
			continue
		}
		if oe.top || ne.top || visits > hardCap {
			if !merged.regs[r].top {
				merged.regs[r] = exprTop()
				changed = true
			}
			continue
		}
		sym := a.newPhi(phiKey{block: block, reg: r})
		a.symIn[sym].record(oe)
		a.symIn[sym].record(ne)
		u := a.intervalOf(oe, old).union(a.intervalOf(ne, edge))
		// The φ takes its inputs' union; widen a still-growing range.
		cur := a.rangeOf(merged, sym)
		if oe.equal(exprSym(sym)) {
			// Loop-carried: old already is the φ; union in the new edge.
			u = cur.union(u)
		}
		if visits > widenAfter {
			if u.lo < cur.lo {
				u.lo = a.widenLo(u.lo)
			}
			if u.hi > cur.hi && !cur.empty() {
				u.hi = a.widenHi(u.hi)
			}
		}
		a.symMax[sym] = a.symMax[sym].union(u)
		// Definitely tid-dependent only when every input is (a
		// self-reference counts as its current flag via a.tidDep).
		if !a.tidDep(oe) || !a.tidDep(ne) {
			a.syms[sym].tidDep = false
		}
		phe := exprSym(sym)
		if !merged.regs[r].equal(phe) {
			merged.regs[r] = phe
			changed = true
		}
		// Compare against the range the state actually saw (cur), not a
		// fresh rangeOf read: the symMax union above already absorbed u
		// into the fallback, so re-reading would mask the growth and the
		// fixpoint would converge before loop counters reach their exit
		// bound (leaving post-loop blocks unreached — unsound).
		if cur != u {
			a.setRange(merged, sym, u)
			changed = true
		}
	}
	for p := 0; p < isa.NumPreds; p++ {
		op, np := old.preds[p], edge.preds[p]
		if op.equal(np) {
			continue
		}
		j := predval{}
		if op.known && np.known && op.val == np.val {
			j = predval{known: true, val: op.val}
		}
		// Same still-live SETP on both edges: re-derive the condition
		// over the merged registers (loop counters become their φ here,
		// which is what lets assume() bound the φ from the loop guard).
		if op.sameSource(np) {
			rhs := exprConst(op.imm)
			if !op.useImm {
				rhs = merged.regs[op.srcB]
			}
			if diff := merged.regs[op.srcA].sub(rhs); !diff.top {
				j.hasCond = true
				j.diff = diff
				j.cmp = op.cmp
				j.live = true
				j.srcA, j.srcB = op.srcA, op.srcB
				j.useImm, j.imm = op.useImm, op.imm
				if !j.known {
					if iv := a.intervalOf(diff, merged); iv.bounded() {
						switch condEval(iv, op.cmp) {
						case +1:
							j.known, j.val = true, true
						case -1:
							j.known, j.val = true, false
						}
					}
				}
			}
		}
		if !merged.preds[p].equal(j) {
			merged.preds[p] = j
			changed = true
		}
	}
	// Symbol ranges: pointwise union (φ ranges were handled above, but
	// re-union is harmless and covers φs minted at other blocks).
	for s := 0; s < len(edge.ranges); s++ {
		u := a.rangeOf(merged, symID(s)).union(edge.ranges[s])
		if visits > widenAfter {
			cur := a.rangeOf(old, symID(s))
			if u.lo < cur.lo {
				u.lo = a.widenLo(u.lo)
			}
			if u.hi > cur.hi && !cur.empty() {
				u.hi = a.widenHi(u.hi)
			}
		}
		if a.rangeOf(merged, symID(s)) != u {
			a.setRange(merged, symID(s), u)
			changed = true
		}
		if int(s) < len(a.symMax) {
			a.symMax[s] = a.symMax[s].union(u)
		}
	}
	if edge.approx && !merged.approx {
		merged.approx = true
		changed = true
	}
	return merged, changed
}
