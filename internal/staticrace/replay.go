package staticrace

import (
	"math"

	"haccrg/internal/isa"
)

// The concrete replayer runs every thread of the launch independently
// through the executor's exact ALU and memory semantics (gpu/warp.go
// aluLane, gpu/exec_mem.go), tracking a taint bit per register and
// predicate. Values loaded from shared or global memory are tainted —
// another thread may have written them, so their content is
// schedule-dependent — and a thread is abandoned the moment taint
// reaches a branch guard, an exit guard, or a memory address. A
// taint-free replay is therefore *exact*: every control decision and
// every address is a deterministic function of thread-local state, so
// the recorded per-thread access multiset is what the simulator will
// produce under any schedule. That exactness is what the quiet-granule
// refinement and the provable-race witnesses (witness.go) stand on.

// Replay budgets; MaxReplaySteps in Config overrides the total.
const (
	replayPerThreadSteps = 1 << 17
	replayTotalSteps     = 1 << 23
	replayMaxThreads     = 8192
	replayMaxAccesses    = 1 << 20
)

// raccess flag bits.
const (
	raWrite uint8 = 1 << iota
	raAtomic
	raShared
)

// raccess is one recorded shared/global access of one thread. Shared
// addresses are window-relative (the per-block shared offset), global
// addresses absolute; bar is the thread's barrier count at the access.
type raccess struct {
	addr  uint64
	pc    int32
	bar   int32
	size  uint16
	flags uint8
}

func (r raccess) write() bool  { return r.flags&raWrite != 0 }
func (r raccess) atomic() bool { return r.flags&raAtomic != 0 }
func (r raccess) shared() bool { return r.flags&raShared != 0 }

// rthread is one thread's replay outcome.
type rthread struct {
	bid, tid int
	bars     int
	ok       bool // ran to Exit taint-free within budget
	acc      []raccess
}

// roob is a concrete shared-memory out-of-bounds access observed
// during replay: the oob witness payload.
type roob struct {
	bid, tid, pc int
	rel          uint64
	size         int
}

// replayResult is the whole-launch replay.
type replayResult struct {
	threads   []rthread
	complete  bool // every thread ok, no shared OOB, budgets held
	blockBars bool // within every block, every thread retired the same bar count
	acqMark   bool // program uses ACQMARK critical sections (lockset path)
	oobs      []roob
	steps     int64
}

// replayKernel replays every thread of the launch. A nil return means
// the launch exceeds the thread budget and replay was not attempted.
func (a *analyzer) replayKernel() *replayResult {
	maxThreads := a.conf.MaxReplayThreads
	if maxThreads <= 0 {
		maxThreads = replayMaxThreads
	}
	nThreads := a.k.GridDim * a.k.BlockDim
	if nThreads <= 0 || nThreads > maxThreads {
		return nil
	}
	total := a.conf.MaxReplaySteps
	if total <= 0 {
		total = replayTotalSteps
	}
	rr := &replayResult{complete: true}
	var nAcc int64
	for bid := 0; bid < a.k.GridDim; bid++ {
		for tid := 0; tid < a.k.BlockDim; tid++ {
			budget := int64(replayPerThreadSteps)
			if rem := total - rr.steps; rem < budget {
				budget = rem
			}
			if budget <= 0 {
				rr.complete = false
				return rr
			}
			th, oobs, used := a.replayThread(bid, tid, budget)
			rr.steps += used
			rr.threads = append(rr.threads, th)
			rr.oobs = append(rr.oobs, oobs...)
			if !th.ok || len(oobs) > 0 {
				rr.complete = false
			}
			nAcc += int64(len(th.acc))
			if nAcc > replayMaxAccesses {
				rr.complete = false
				return rr
			}
		}
	}
	if a.progAcqMark() {
		rr.acqMark = true
	}
	// blockBars: every thread of each block retired the same number of
	// barriers (and retired cleanly). Then the i-th barrier arrival of
	// any thread is the block's i-th barrier event, which makes the
	// per-access bar label a consistent epoch index across the block.
	rr.blockBars = true
	for bid := 0; bid < a.k.GridDim; bid++ {
		base := bid * a.k.BlockDim
		want := rr.threads[base].bars
		for t := 0; t < a.k.BlockDim; t++ {
			th := &rr.threads[base+t]
			if !th.ok || th.bars != want {
				rr.blockBars = false
			}
		}
	}
	return rr
}

func (a *analyzer) progAcqMark() bool {
	for i := range a.prog.Code {
		switch a.prog.Code[i].Op {
		case isa.OpAcqMark, isa.OpRelMark:
			return true
		}
	}
	return false
}

// replayThread runs one thread to Exit or abandonment.
func (a *analyzer) replayThread(bid, tid int, budget int64) (rthread, []roob, int64) {
	th := rthread{bid: bid, tid: tid}
	var oobs []roob
	var (
		regs  [isa.NumRegs]uint64
		rt    [isa.NumRegs]bool // register taint
		preds [isa.NumPreds]bool
		pt    [isa.NumPreds]bool // predicate taint
	)
	// Thread-private local memory, byte-granular with byte taint.
	var local map[uint64]byte
	var localT map[uint64]bool
	code := a.prog.Code
	ws := a.conf.WarpSize
	sr := func(k isa.SregKind) uint64 {
		switch k {
		case isa.SregTid:
			return uint64(tid)
		case isa.SregNtid:
			return uint64(a.k.BlockDim)
		case isa.SregCtaid:
			return uint64(bid)
		case isa.SregNctaid:
			return uint64(a.k.GridDim)
		case isa.SregLane:
			return uint64(tid % ws)
		case isa.SregWarp:
			return uint64(tid / ws)
		case isa.SregGtid:
			return uint64(bid*a.k.BlockDim + tid)
		}
		return 0
	}

	var steps int64
	pc := 0
	for {
		if steps >= budget || pc < 0 || pc >= len(code) {
			return th, oobs, steps // budget or runaway: abandoned
		}
		steps++
		in := &code[pc]
		// Guard.
		exec := true
		if in.Pred != isa.NoPred {
			if pt[in.Pred] {
				return th, oobs, steps // tainted guard: control unknowable
			}
			exec = preds[in.Pred]
			if in.PredNeg {
				exec = !exec
			}
		}
		if !exec {
			pc++
			continue
		}

		src := func(r isa.Reg) uint64 { return regs[r] }
		b := func() uint64 {
			if in.UseImm {
				return uint64(in.Imm)
			}
			return src(in.SrcB)
		}
		bt := func() bool { return !in.UseImm && rt[in.SrcB] }
		f := func(r isa.Reg) float64 { return math.Float64frombits(regs[r]) }
		fb := func() float64 {
			if in.UseImm {
				return math.Float64frombits(uint64(in.Imm))
			}
			return f(in.SrcB)
		}
		set := func(v uint64, taint bool) {
			regs[in.Dst] = v
			rt[in.Dst] = taint
		}
		setF := func(v float64, taint bool) { set(math.Float64bits(v), taint) }
		ta := func() bool { return rt[in.SrcA] }

		switch in.Op {
		case isa.OpNop, isa.OpMembar:
			pc++
		case isa.OpAcqMark, isa.OpRelMark:
			pc++
		case isa.OpBar:
			th.bars++
			pc++
		case isa.OpBra:
			if in.Pred != isa.NoPred && pt[in.Pred] {
				return th, oobs, steps
			}
			pc = in.Tgt
		case isa.OpExit:
			th.ok = true
			return th, oobs, steps
		case isa.OpMov:
			if in.UseImm {
				set(uint64(in.Imm), false)
			} else {
				set(src(in.SrcA), ta())
			}
			pc++
		case isa.OpSreg:
			set(sr(isa.SregKind(in.Imm)), false)
			pc++
		case isa.OpSelp:
			if pt[in.PD] {
				set(0, true)
			} else if preds[in.PD] {
				set(src(in.SrcA), ta())
			} else {
				set(src(in.SrcC), rt[in.SrcC])
			}
			pc++
		case isa.OpAdd:
			set(src(in.SrcA)+b(), ta() || bt())
			pc++
		case isa.OpSub:
			set(src(in.SrcA)-b(), ta() || bt())
			pc++
		case isa.OpMul:
			set(uint64(int64(src(in.SrcA))*int64(b())), ta() || bt())
			pc++
		case isa.OpDiv:
			d := int64(b())
			if d == 0 {
				set(0, ta() || bt())
			} else {
				set(uint64(int64(src(in.SrcA))/d), ta() || bt())
			}
			pc++
		case isa.OpRem:
			d := int64(b())
			if d == 0 {
				set(0, ta() || bt())
			} else {
				set(uint64(int64(src(in.SrcA))%d), ta() || bt())
			}
			pc++
		case isa.OpMin:
			x, y := int64(src(in.SrcA)), int64(b())
			if y < x {
				x = y
			}
			set(uint64(x), ta() || bt())
			pc++
		case isa.OpMax:
			x, y := int64(src(in.SrcA)), int64(b())
			if y > x {
				x = y
			}
			set(uint64(x), ta() || bt())
			pc++
		case isa.OpAnd:
			set(src(in.SrcA)&b(), ta() || bt())
			pc++
		case isa.OpOr:
			set(src(in.SrcA)|b(), ta() || bt())
			pc++
		case isa.OpXor:
			set(src(in.SrcA)^b(), ta() || bt())
			pc++
		case isa.OpNot:
			set(^src(in.SrcA), ta())
			pc++
		case isa.OpShl:
			set(src(in.SrcA)<<(b()&63), ta() || bt())
			pc++
		case isa.OpShr:
			set(uint64(int64(src(in.SrcA))>>(b()&63)), ta() || bt())
			pc++
		case isa.OpMad:
			set(uint64(int64(src(in.SrcA))*int64(b())+int64(src(in.SrcC))), ta() || bt() || rt[in.SrcC])
			pc++
		case isa.OpFAdd:
			setF(f(in.SrcA)+fb(), ta() || bt())
			pc++
		case isa.OpFSub:
			setF(f(in.SrcA)-fb(), ta() || bt())
			pc++
		case isa.OpFMul:
			setF(f(in.SrcA)*fb(), ta() || bt())
			pc++
		case isa.OpFDiv:
			setF(f(in.SrcA)/fb(), ta() || bt())
			pc++
		case isa.OpFMin:
			setF(math.Min(f(in.SrcA), fb()), ta() || bt())
			pc++
		case isa.OpFMax:
			setF(math.Max(f(in.SrcA), fb()), ta() || bt())
			pc++
		case isa.OpFSqrt:
			setF(math.Sqrt(f(in.SrcA)), ta())
			pc++
		case isa.OpFExp:
			setF(math.Exp(f(in.SrcA)), ta())
			pc++
		case isa.OpFLog:
			setF(math.Log(f(in.SrcA)), ta())
			pc++
		case isa.OpFSin:
			setF(math.Sin(f(in.SrcA)), ta())
			pc++
		case isa.OpFCos:
			setF(math.Cos(f(in.SrcA)), ta())
			pc++
		case isa.OpFAbs:
			setF(math.Abs(f(in.SrcA)), ta())
			pc++
		case isa.OpItoF:
			setF(float64(int64(src(in.SrcA))), ta())
			pc++
		case isa.OpFtoI:
			set(uint64(int64(f(in.SrcA))), ta())
			pc++
		case isa.OpSetp:
			preds[in.PD] = intCmp(in.Cmp, int64(src(in.SrcA)), int64(b()))
			pt[in.PD] = ta() || bt()
			pc++
		case isa.OpFSetp:
			preds[in.PD] = floatCmp(in.Cmp, f(in.SrcA), fb())
			pt[in.PD] = ta() || bt()
			pc++
		case isa.OpLd, isa.OpSt, isa.OpAtom:
			if rt[in.SrcA] {
				return th, oobs, steps // tainted address
			}
			addr := src(in.SrcA) + uint64(in.Imm)
			switch in.Space {
			case isa.SpaceParam:
				idx := int(addr / 8)
				if in.Op != isa.OpLd || idx < 0 || idx >= len(a.k.Params) {
					return th, oobs, steps // the simulator faults here
				}
				set(a.k.Params[idx], false)
			case isa.SpaceLocal:
				if local == nil {
					local, localT = map[uint64]byte{}, map[uint64]bool{}
				}
				sz := uint64(in.Size)
				switch in.Op {
				case isa.OpLd:
					var v uint64
					taint := in.Float && in.Size == 4
					for i := uint64(0); i < sz; i++ {
						v |= uint64(local[addr+i]) << (8 * i)
						if localT[addr+i] {
							taint = true
						}
					}
					set(v, taint)
				case isa.OpSt:
					v := regs[in.SrcB]
					dirty := rt[in.SrcB] || (in.Float && in.Size == 4)
					for i := uint64(0); i < sz; i++ {
						local[addr+i] = byte(v >> (8 * i))
						localT[addr+i] = dirty
					}
				case isa.OpAtom:
					set(0, true) // local atomics are not modeled exactly
					for i := uint64(0); i < sz; i++ {
						localT[addr+i] = true
					}
				}
			case isa.SpaceShared:
				if addr+uint64(in.Size) > uint64(a.k.SharedBytes) {
					oobs = append(oobs, roob{bid: bid, tid: tid, pc: pc, rel: addr, size: int(in.Size)})
					// The simulator fails the launch here; record the
					// witness payload and keep walking (completeness is
					// already void via the oob list).
					if in.Op != isa.OpSt {
						set(0, true)
					}
					pc++
					continue
				}
				fl := raShared
				switch in.Op {
				case isa.OpSt:
					fl |= raWrite
				case isa.OpAtom:
					fl |= raAtomic
					set(0, true)
				default:
					set(0, true) // another thread may have written it
				}
				th.acc = append(th.acc, raccess{addr: addr, pc: int32(pc), bar: int32(th.bars), size: uint16(in.Size), flags: fl})
			case isa.SpaceGlobal:
				var fl uint8
				switch in.Op {
				case isa.OpSt:
					fl |= raWrite
				case isa.OpAtom:
					fl |= raAtomic
					set(0, true)
				default:
					set(0, true)
				}
				th.acc = append(th.acc, raccess{addr: addr, pc: int32(pc), bar: int32(th.bars), size: uint16(in.Size), flags: fl})
			}
			pc++
		default:
			if in.Dst < isa.NumRegs {
				set(0, true)
			}
			pc++
		}
	}
}

// intCmp / floatCmp mirror the executor's comparison semantics
// (gpu/warp.go) exactly.
func intCmp(c isa.CmpOp, a, b int64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}

func floatCmp(c isa.CmpOp, a, b float64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}
