package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: arrival is never before departure + base latency, and a
// port never delivers two packets in the same occupancy window.
func TestPropertyArrivalMonotone(t *testing.T) {
	cfg := Config{LatencyCycles: 15, FlitBytes: 32, FlitsPerCycle: 1, MetaBytesBase: 8}
	f := func(departs []uint16, payloads []uint8) bool {
		n := New(cfg, 2)
		var lastArrive int64
		var depart int64
		for i, d := range departs {
			depart += int64(d % 64)
			pay := 0
			if i < len(payloads) {
				pay = int(payloads[i]) % 256
			}
			arrive := n.Send(0, depart, pay)
			if arrive < depart+cfg.LatencyCycles {
				return false
			}
			if arrive < lastArrive { // same port: FIFO-ish ordering
				return false
			}
			lastArrive = arrive
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: flit accounting matches payload sizes: total flits >= one
// per packet, and grows with payload.
func TestPropertyFlitAccounting(t *testing.T) {
	cfg := DefaultConfig
	rng := rand.New(rand.NewSource(9))
	n := New(cfg, 4)
	packets := int64(0)
	for i := 0; i < 500; i++ {
		n.Send(rng.Intn(4), int64(i), rng.Intn(256))
		packets++
	}
	if n.FlitCount < packets {
		t.Fatalf("flits %d < packets %d", n.FlitCount, packets)
	}
	// A second network carrying bigger payloads must move more flits.
	big := New(cfg, 4)
	for i := 0; i < 500; i++ {
		big.Send(i%4, int64(i), 256)
	}
	if big.FlitCount <= n.FlitCount {
		t.Fatalf("bigger payloads moved fewer flits: %d vs %d", big.FlitCount, n.FlitCount)
	}
}

// Property: ports are independent — traffic on one never delays another.
func TestPropertyPortIndependence(t *testing.T) {
	cfg := Config{LatencyCycles: 10, FlitBytes: 32, FlitsPerCycle: 1, MetaBytesBase: 8}
	loaded := New(cfg, 2)
	for i := 0; i < 100; i++ {
		loaded.Send(0, 0, 128) // hammer port 0
	}
	quiet := New(cfg, 2)
	if loaded.Send(1, 50, 0) != quiet.Send(1, 50, 0) {
		t.Fatal("port 1 delayed by port 0 traffic")
	}
}
