// Package noc models the interconnection network between the SM
// clusters and the memory partitions: per-link latency plus a
// throughput reservation per partition port. Requests carry control
// metadata — the paper's sync IDs, fence IDs and atomic IDs travel
// with each global-memory request packet — so packet sizes grow when
// race detection is enabled, which is accounted here.
package noc

// Config describes the network.
type Config struct {
	LatencyCycles  int64 // base one-way traversal latency
	FlitBytes      int   // bytes per flit (32 in the paper's Table I)
	FlitsPerCycle  int64 // injection throughput per partition port
	MetaBytesBase  int   // control header bytes per request packet
	MetaBytesRDU   int   // extra bytes when HAccRG IDs ride along (sync+fence+atomic IDs)
	RDUMetaEnabled bool  // set when global race detection is on
}

// DefaultConfig approximates the paper's crossbar (1 virtual channel,
// 32B flits).
var DefaultConfig = Config{
	LatencyCycles: 20,
	FlitBytes:     32,
	FlitsPerCycle: 1,
	MetaBytesBase: 8,
	MetaBytesRDU:  4, // 8-bit sync + 8-bit fence + 16-bit atomic ID
}

// Network is the reservation-based NoC model. One ingress port per
// partition in each direction.
type Network struct {
	cfg       Config
	toPart    []int64 // next-free cycle per partition ingress port
	fromPart  []int64
	FlitCount int64
	ByteCount int64
}

// New builds a network connecting to nPartitions memory slices.
func New(cfg Config, nPartitions int) *Network {
	return &Network{
		cfg:      cfg,
		toPart:   make([]int64, nPartitions),
		fromPart: make([]int64, nPartitions),
	}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

func (n *Network) flits(payloadBytes int) int64 {
	b := payloadBytes + n.cfg.MetaBytesBase
	if n.cfg.RDUMetaEnabled {
		b += n.cfg.MetaBytesRDU
	}
	f := int64((b + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes)
	if f < 1 {
		f = 1
	}
	return f
}

// Send models a request packet from an SM to partition part, departing
// at cycle depart with payloadBytes of data (0 for a read request),
// returning the arrival cycle at the partition.
func (n *Network) Send(part int, depart int64, payloadBytes int) int64 {
	return n.traverse(n.toPart, part, depart, payloadBytes)
}

// Reply models a response packet from partition part back to an SM.
func (n *Network) Reply(part int, depart int64, payloadBytes int) int64 {
	return n.traverse(n.fromPart, part, depart, payloadBytes)
}

func (n *Network) traverse(ports []int64, part int, depart int64, payloadBytes int) int64 {
	f := n.flits(payloadBytes)
	start := depart
	if ports[part] > start {
		start = ports[part]
	}
	occupancy := (f + n.cfg.FlitsPerCycle - 1) / n.cfg.FlitsPerCycle
	ports[part] = start + occupancy
	n.FlitCount += f
	n.ByteCount += int64(payloadBytes)
	return start + occupancy + n.cfg.LatencyCycles
}

// ResetStats clears traffic counters between launches.
func (n *Network) ResetStats() {
	n.FlitCount = 0
	n.ByteCount = 0
}
