package noc

import "testing"

func TestLatency(t *testing.T) {
	n := New(Config{LatencyCycles: 20, FlitBytes: 32, FlitsPerCycle: 1, MetaBytesBase: 8}, 4)
	if got := n.Send(0, 0, 0); got != 21 {
		t.Errorf("single-flit send arrives at %d, want 21", got)
	}
}

func TestPortContention(t *testing.T) {
	n := New(Config{LatencyCycles: 10, FlitBytes: 32, FlitsPerCycle: 1, MetaBytesBase: 8}, 2)
	a := n.Send(0, 100, 0)
	b := n.Send(0, 100, 0) // same port, same cycle: serialized
	c := n.Send(1, 100, 0) // different port: unaffected
	if b != a+1 {
		t.Errorf("contended sends: %d then %d, want 1 apart", a, b)
	}
	if c != a {
		t.Errorf("independent port delayed: %d vs %d", c, a)
	}
}

func TestReplyIndependentOfSend(t *testing.T) {
	n := New(DefaultConfig, 2)
	n.Send(0, 0, 0)
	r := n.Reply(0, 0, 128)
	// A 128B payload + 8B header = 136B -> 5 flits of 32B.
	want := int64(5) + DefaultConfig.LatencyCycles
	if r != want {
		t.Errorf("reply arrives at %d, want %d", r, want)
	}
}

func TestRDUMetadataGrowsPackets(t *testing.T) {
	cfg := Config{LatencyCycles: 0, FlitBytes: 8, FlitsPerCycle: 1, MetaBytesBase: 8, MetaBytesRDU: 4}
	plain := New(cfg, 1)
	cfg.RDUMetaEnabled = true
	rdu := New(cfg, 1)
	plain.Send(0, 0, 0)
	rdu.Send(0, 0, 0)
	if rdu.FlitCount <= plain.FlitCount {
		t.Errorf("RDU metadata should add flits: %d vs %d", rdu.FlitCount, plain.FlitCount)
	}
}

func TestResetStats(t *testing.T) {
	n := New(DefaultConfig, 1)
	n.Send(0, 0, 64)
	if n.FlitCount == 0 || n.ByteCount != 64 {
		t.Fatalf("counters not tracking: %d flits %d bytes", n.FlitCount, n.ByteCount)
	}
	n.ResetStats()
	if n.FlitCount != 0 || n.ByteCount != 0 {
		t.Error("ResetStats left counters")
	}
}
