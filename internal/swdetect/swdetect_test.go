package swdetect

import (
	"testing"

	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// racyKernel: two blocks write the same global words.
func racyKernel(out uint64) *gpu.Kernel {
	b := isa.NewBuilder("racy")
	b.Sreg(1, isa.SregTid)
	b.Ldp(2, 0)
	b.Muli(3, 1, 4)
	b.Add(2, 2, 3)
	b.St(isa.SpaceGlobal, 2, 0, 1, 4)
	b.Exit()
	return &gpu.Kernel{Name: "racy", Prog: b.MustBuild(), GridDim: 2, BlockDim: 32, Params: []uint64{out}}
}

func opts() core.Options {
	o := core.DefaultOptions()
	o.SharedGranularity = 4
	return o
}

func TestDetectsSameRacesAsHardware(t *testing.T) {
	sw := MustNew(opts(), DefaultCostModel)
	dev := gpu.MustNewDevice(gpu.TestConfig(), 1<<16, sw)
	out := dev.MustMalloc(256)
	if _, err := dev.Launch(racyKernel(out)); err != nil {
		t.Fatal(err)
	}
	if len(sw.Races()) == 0 {
		t.Fatal("software build detected no races")
	}
	for _, r := range sw.Races() {
		if r.Category != core.CatCrossBlock {
			t.Errorf("unexpected race category: %v", r)
		}
	}
}

func TestInstrumentationSlowsExecution(t *testing.T) {
	run := func(det gpu.Detector) int64 {
		dev := gpu.MustNewDevice(gpu.TestConfig(), 1<<16, det)
		out := dev.MustMalloc(256)
		st, err := dev.Launch(racyKernel(out))
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	base := run(nil)
	hw := run(core.MustNew(opts()))
	sw := MustNew(opts(), DefaultCostModel)
	swc := run(sw)
	if swc <= hw || swc <= base {
		t.Fatalf("software instrumentation should be the slowest: base %d, hw %d, sw %d", base, hw, swc)
	}
	if sw.InstrStallCycles == 0 {
		t.Error("no instrumentation stall recorded")
	}
	if sw.ShadowDemandTx == 0 {
		t.Error("no shadow demand traffic recorded")
	}
}

func TestCostModelKnobs(t *testing.T) {
	run := func(cm CostModel) int64 {
		det := MustNew(opts(), cm)
		dev := gpu.MustNewDevice(gpu.TestConfig(), 1<<16, det)
		out := dev.MustMalloc(256)
		st, err := dev.Launch(racyKernel(out))
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	light := run(CostModel{ALUPerAccess: 2})
	heavy := run(CostModel{ALUPerAccess: 200, ShadowUpdate: true, AtomicShadow: true})
	if heavy <= light {
		t.Fatalf("heavier cost model not slower: %d vs %d", heavy, light)
	}
}

func TestSpaceFiltering(t *testing.T) {
	o := opts()
	o.Global = false
	o.DetectStaleL1 = false
	sw := MustNew(o, DefaultCostModel)
	dev := gpu.MustNewDevice(gpu.TestConfig(), 1<<16, sw)
	out := dev.MustMalloc(256)
	if _, err := dev.Launch(racyKernel(out)); err != nil {
		t.Fatal(err)
	}
	// Global detection disabled: no global instrumentation, no races.
	if len(sw.Races()) != 0 {
		t.Errorf("shared-only build reported global races: %v", sw.Races()[0])
	}
	if sw.InstrStallCycles != 0 {
		t.Errorf("shared-only build charged global instrumentation: %d", sw.InstrStallCycles)
	}
}

func TestInvalidOptionsRejected(t *testing.T) {
	if _, err := New(core.Options{}, DefaultCostModel); err == nil {
		t.Fatal("empty options accepted")
	}
}
