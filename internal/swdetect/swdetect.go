// Package swdetect models the software implementation of HAccRG the
// paper compares against in Section VI-B: the same detection algorithm
// as internal/core, but run as inline kernel instrumentation instead
// of dedicated hardware. Every memory instruction expands into extra
// ALU work (address arithmetic, field extraction, state-machine
// branches) plus shadow-entry loads and stores that travel the normal
// demand path — all of it blocking the issuing warp, which is where
// the 6-18x slowdowns of the paper come from.
package swdetect

import (
	"haccrg/internal/core"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// CostModel sets the per-access instrumentation charges.
type CostModel struct {
	// ALUPerAccess is the number of extra warp instructions executed
	// around each memory instruction (index computation, unpacking the
	// shadow fields, the state-machine compare/branch sequence).
	ALUPerAccess int
	// ShadowUpdate adds a read-modify-write of the shadow entry
	// through the demand memory path (always on; the flag exists for
	// ablations).
	ShadowUpdate bool
	// AtomicShadow serializes shadow updates with an atomic operation,
	// as a correct multi-warp software implementation requires.
	AtomicShadow bool
}

// DefaultCostModel reflects a hand-tuned instrumentation sequence of
// roughly a dozen instructions per access.
var DefaultCostModel = CostModel{ALUPerAccess: 40, ShadowUpdate: true, AtomicShadow: true}

// Detector is the software HAccRG build. It reuses the core detection
// algorithm (with hardware traffic modelling disabled) and charges
// instrumentation costs.
type Detector struct {
	inner *core.Detector
	cost  CostModel
	env   gpu.Env

	// Stats.
	InstrStallCycles int64
	ShadowDemandTx   int64
}

// New builds the software detector. Options follow core semantics;
// ModelTraffic is forced off.
func New(opt core.Options, cost CostModel) (*Detector, error) {
	opt.ModelTraffic = false
	inner, err := core.New(opt)
	if err != nil {
		return nil, err
	}
	return &Detector{inner: inner, cost: cost}, nil
}

// MustNew is New panicking on invalid options.
func MustNew(opt core.Options, cost CostModel) *Detector {
	d, err := New(opt, cost)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements gpu.Detector.
func (d *Detector) Name() string { return "sw-haccrg" }

// Inner exposes the underlying detection engine (races, stats).
func (d *Detector) Inner() *core.Detector { return d.inner }

// Health implements gpu.HealthReporter via the core engine.
func (d *Detector) Health() *gpu.DetectorHealth { return d.inner.Health() }

// Races returns the detected races.
func (d *Detector) Races() []*core.Race { return d.inner.Races() }

// KernelStart implements gpu.Detector.
func (d *Detector) KernelStart(env gpu.Env, kernel string) {
	d.env = env
	d.inner.KernelStart(env, kernel)
}

// KernelEnd implements gpu.Detector.
func (d *Detector) KernelEnd() { d.inner.KernelEnd() }

// BlockStart implements gpu.Detector.
func (d *Detector) BlockStart(sm int, sharedBase, sharedSize int) {
	d.inner.BlockStart(sm, sharedBase, sharedSize)
}

// WarpMem implements gpu.Detector: run detection, then charge the
// instrumentation the software build would execute inline.
func (d *Detector) WarpMem(ev *gpu.WarpMemEvent) int64 {
	opt := d.inner.Options()
	if ev.Space == isa.SpaceShared && !opt.Shared {
		return 0
	}
	if ev.Space == isa.SpaceGlobal && !opt.Global {
		return 0
	}
	d.inner.WarpMem(ev)

	cfg := d.env.Config()
	stall := int64(d.cost.ALUPerAccess) * cfg.IssueInterval()
	if d.cost.ShadowUpdate {
		// One shadow read + one shadow write per distinct shadow line
		// the warp's lanes touch, through the demand path, blocking.
		gran := uint64(opt.GlobalGranularity)
		if ev.Space == isa.SpaceShared {
			gran = uint64(opt.SharedGranularity)
		}
		const entryBytes = 8
		seg := uint64(cfg.SegmentBytes)
		lines := make(map[uint64]struct{}, 2)
		for i := range ev.Lanes {
			la := &ev.Lanes[i]
			sa := d.env.ShadowBase() + (la.Addr/gran)*entryBytes
			lines[sa&^(seg-1)] = struct{}{}
		}
		when := ev.Cycle + stall
		latest := when
		for line := range lines {
			var t2 int64
			if d.cost.AtomicShadow {
				// Shadow entries are updated with a CAS that bypasses
				// the L1 and serializes at the partition.
				t2 = d.env.InstrAtomicTx(ev.SM, when, line)
				d.ShadowDemandTx++
			} else {
				t := d.env.InstrTx(ev.SM, when, line, false)
				t2 = d.env.InstrTx(ev.SM, t, line, true)
				d.ShadowDemandTx += 2
			}
			if t2 > latest {
				latest = t2
			}
		}
		stall = latest - ev.Cycle
	}
	d.InstrStallCycles += stall
	return stall
}

// Barrier implements gpu.Detector: the software build resets its
// shadow region with a memset-like sweep through the demand path.
func (d *Detector) Barrier(sm, block int, sharedBase, sharedSize int, cycle int64) int64 {
	d.inner.Barrier(sm, block, sharedBase, sharedSize, cycle)
	opt := d.inner.Options()
	if !opt.Shared || sharedSize == 0 {
		return 0
	}
	cfg := d.env.Config()
	entries := int64(sharedSize / opt.SharedGranularity)
	lineBytes := int64(cfg.SegmentBytes)
	spanLines := (entries*2 + lineBytes - 1) / lineBytes
	var latest int64 = cycle
	for i := int64(0); i < spanLines; i++ {
		t := d.env.InstrTx(sm, cycle, d.env.ShadowBase()+uint64(i)*uint64(lineBytes), true)
		d.ShadowDemandTx++
		if t > latest {
			latest = t
		}
	}
	stall := latest - cycle
	d.InstrStallCycles += stall
	return stall
}
