package termtab

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPlainModeTabSeparated(t *testing.T) {
	tb := New(false)
	tb.Row(C("pc"), C("space"), C("class"))
	tb.Row(C("11"), C("shared"), Cell{Text: "provable-race", Style: Red})
	got := tb.String()
	want := "pc\tspace\tclass\n11\tshared\tprovable-race\n"
	if got != want {
		t.Fatalf("plain output:\n%q\nwant\n%q", got, want)
	}
	if strings.Contains(got, "\x1b[") {
		t.Fatal("plain mode must not emit ANSI escapes")
	}
}

func TestTTYModeAlignsAndStyles(t *testing.T) {
	tb := New(true).Indent("  ")
	tb.Row(C("pc"), C("class"))
	tb.Row(C("7"), Cell{Text: "unknown", Style: Yellow})
	got := tb.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), got)
	}
	// "pc" pads to the width of "7"+... both data columns align: first
	// column width is 2 ("pc"), so "7" is padded to "7 ".
	if !strings.HasPrefix(lines[0], "  pc  class") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  7   ") {
		t.Fatalf("data row misaligned: %q", lines[1])
	}
	if !strings.Contains(lines[1], string(Yellow)+"unknown"+reset) {
		t.Fatalf("styled cell missing escapes: %q", lines[1])
	}
}

func TestLastColumnUnpadded(t *testing.T) {
	tb := New(true)
	tb.Row(C("a"), C("x"))
	tb.Row(C("b"), C("longer"))
	for _, line := range strings.Split(strings.TrimRight(tb.String(), "\n"), "\n") {
		if strings.HasSuffix(line, " ") {
			t.Fatalf("trailing padding on %q", line)
		}
	}
}

func TestIsTTY(t *testing.T) {
	if IsTTY(nil) {
		t.Fatal("nil is not a TTY")
	}
	f, err := os.Create(filepath.Join(t.TempDir(), "regular"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if IsTTY(f) {
		t.Fatal("regular file is not a TTY")
	}
}

func TestEmptyTable(t *testing.T) {
	if got := New(true).String(); got != "" {
		t.Fatalf("empty table rendered %q", got)
	}
}
