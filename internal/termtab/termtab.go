// Package termtab renders small tables for command-line tools. When
// the destination is an interactive terminal the columns are aligned
// and cells may carry ANSI colors; otherwise (pipes, files, CI logs)
// rows degrade to plain tab-separated lines that cut/awk/sort handle
// without stripping escape codes. Stdlib only.
package termtab

import (
	"io"
	"os"
	"strings"
	"unicode/utf8"
)

// Style is an ANSI SGR prefix applied to one cell on TTY output.
type Style string

// Cell styles. None leaves the cell unstyled everywhere.
const (
	None   Style = ""
	Red    Style = "\x1b[31m"
	Yellow Style = "\x1b[33m"
	Green  Style = "\x1b[32m"
	Dim    Style = "\x1b[2m"
)

const reset = "\x1b[0m"

// Cell is one table cell: text plus an optional TTY style.
type Cell struct {
	Text  string
	Style Style
}

// C is shorthand for an unstyled cell.
func C(text string) Cell { return Cell{Text: text} }

// IsTTY reports whether f is an interactive terminal (character
// device). False for nil, pipes, and regular files.
func IsTTY(f *os.File) bool {
	if f == nil {
		return false
	}
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return (fi.Mode() & os.ModeCharDevice) != 0
}

// Table accumulates rows and renders them either aligned (tty) or
// tab-separated (not). The zero value is a non-TTY table.
type Table struct {
	tty    bool
	indent string
	rows   [][]Cell
}

// New returns a table; tty selects aligned, styled output.
func New(tty bool) *Table { return &Table{tty: tty} }

// Indent sets a prefix emitted before every row.
func (t *Table) Indent(prefix string) *Table {
	t.indent = prefix
	return t
}

// Row appends one row.
func (t *Table) Row(cells ...Cell) {
	t.rows = append(t.rows, cells)
}

// Render writes the table. Aligned mode pads every column but the last
// to its widest cell (two-space gutter); plain mode joins cells with
// single tabs.
func (t *Table) Render(w io.Writer) {
	if len(t.rows) == 0 {
		return
	}
	var b strings.Builder
	if !t.tty {
		for _, row := range t.rows {
			b.WriteString(t.indent)
			for i, c := range row {
				if i > 0 {
					b.WriteByte('\t')
				}
				b.WriteString(c.Text)
			}
			b.WriteByte('\n')
		}
		io.WriteString(w, b.String())
		return
	}
	var widths []int
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if n := utf8.RuneCountInString(c.Text); n > widths[i] {
				widths[i] = n
			}
		}
	}
	for _, row := range t.rows {
		b.WriteString(t.indent)
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(row)-1 {
				pad = widths[i] - utf8.RuneCountInString(c.Text)
			}
			if c.Style != None {
				b.WriteString(string(c.Style))
				b.WriteString(c.Text)
				b.WriteString(reset)
			} else {
				b.WriteString(c.Text)
			}
			for ; pad > 0; pad-- {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	io.WriteString(w, b.String())
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
