// Command haccrg-server runs race detection as a service: an HTTP+JSON
// daemon that accepts benchmark jobs, uploaded event journals, and
// static-analysis requests and executes them on the same harness job
// core every haccrg CLI uses.
//
// The daemon is built to be leaned on: a bounded queue with explicit
// admission control (saturation answers 429 + Retry-After, memory
// stays bounded), per-tenant token-bucket quotas and concurrency caps,
// per-job deadlines, panic-isolated workers, a content-addressed cache
// of static-analysis reports, and graceful drain — SIGTERM stops
// admission, lets in-flight jobs finish inside the drain window, and
// checkpoints whatever is still running through the sweep-manifest
// resume path so a restarted daemon completes them byte-identically.
//
// Exit codes: 0 clean drain (everything accepted was finished),
// 5 drained with resumable state left in the spool, 1 startup or serve
// failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"haccrg/internal/harness"
	"haccrg/internal/service"
	"haccrg/internal/version"
)

func main() {
	fs := flag.NewFlagSet("haccrg-server", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address")
	dataDir := fs.String("data", "", "durable data directory (job spool, manifests, journals); required")
	queueDepth := fs.Int("queue", 64, "admission queue depth (full queue answers 429)")
	workers := fs.Int("workers", 0, "concurrent job executors (0 = GOMAXPROCS)")
	parallel := fs.Int("parallel", 1, "sweep workers per bench job (0 = GOMAXPROCS)")
	tenantRate := fs.Float64("tenant-rate", 5, "per-tenant sustained admissions per second (0 disables)")
	tenantBurst := fs.Int("tenant-burst", 10, "per-tenant admission burst")
	tenantConc := fs.Int("tenant-concurrent", 4, "per-tenant concurrent-job cap (0 = unlimited)")
	deadline := fs.Duration("deadline", 5*time.Minute, "default per-job deadline")
	maxDeadline := fs.Duration("max-deadline", 30*time.Minute, "hard cap on requested per-job deadlines")
	cacheEntries := fs.Int("cache", 128, "static-analysis report cache entries")
	smallGPU := fs.Bool("small-gpu", false, "force every job onto the 4-SM test device")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a shutdown signal lets in-flight jobs finish before checkpointing them")
	showVersion := fs.Bool("version", false, "print version and exit")
	fs.Parse(os.Args[1:])

	if *showVersion {
		fmt.Println(version.String("haccrg-server"))
		return
	}
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "haccrg-server: -data is required")
		fs.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	harness.SetParallelism(*parallel)

	srv, err := service.New(service.Config{
		DataDir:    *dataDir,
		QueueDepth: *queueDepth,
		Workers:    *workers,
		Tenant: service.TenantConfig{
			Rate: *tenantRate, Burst: *tenantBurst, MaxConcurrent: *tenantConc,
		},
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		CacheEntries:    *cacheEntries,
		SmallGPU:        *smallGPU,
		Log:             logger,
	})
	if err != nil {
		logger.Printf("haccrg-server: %v", err)
		os.Exit(1)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("haccrg-server: %v", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Printf("haccrg-server %s listening on %s (data %s, queue %d, workers auto=%d)",
		version.Version, ln.Addr(), *dataDir, *queueDepth, *workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigs:
		logger.Printf("haccrg-server: %v: draining (window %s)", sig, *drainTimeout)
	case err := <-serveErr:
		logger.Printf("haccrg-server: serve: %v", err)
		os.Exit(1)
	}

	// Readiness flips first so load balancers stop routing here, then
	// the drain window runs, then the listener closes.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	rep := srv.Drain(drainCtx)
	cancel()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("haccrg-server: shutdown: %v", err)
	}
	cancel()

	if rep.Interrupted > 0 || rep.Requeued > 0 {
		logger.Printf("haccrg-server: exiting with resumable state (%d interrupted, %d queued); restart with the same -data to finish",
			rep.Interrupted, rep.Requeued)
		os.Exit(5)
	}
	logger.Printf("haccrg-server: clean exit")
}
