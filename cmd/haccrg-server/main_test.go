package main

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"haccrg/internal/journal"
	"haccrg/internal/service"
)

// TestMain doubles as the daemon when re-executed with the helper
// variable set — the same trick the harness sweep tests use — so the
// lifecycle test below can boot, signal, and restart a real
// haccrg-server process without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("HACCRG_SERVER_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// startDaemon boots a helper-process daemon over dataDir and returns
// the process plus the base URL scraped from its startup log line.
func startDaemon(t *testing.T, dataDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-data", dataDir,
		"-drain-timeout", "200ms",
	}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "HACCRG_SERVER_HELPER=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The daemon logs "listening on <addr>" once the socket is bound.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never reported its listening address")
		return nil, ""
	}
}

// waitExit waits for the daemon to exit and returns its exit code.
func waitExit(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		t.Fatalf("daemon wait: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited")
	}
	return -1
}

// manifestRecords counts intact framed records in a manifest file.
func manifestRecords(path string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	r, err := journal.NewReader(f)
	if err != nil {
		return 0
	}
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			return n
		}
		n++
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return -1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestServerDrainAndResume is the daemon-level statement of the PR's
// acceptance invariant: SIGTERM mid-way through a journaled bench job
// makes the daemon checkpoint and exit with the resumable-state code,
// and a restart over the same data directory finishes the job with
// findings byte-identical to an uninterrupted control run.
func TestServerDrainAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real daemon processes and runs multi-second simulations")
	}
	spec := &service.JobSpec{Kind: service.JobBench, Benches: []string{"hist", "mcarlo"}, Scale: 8}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Control: the same spec, uninterrupted, on a throwaway daemon.
	ctrlCmd, ctrlURL := startDaemon(t, t.TempDir())
	ctrlClient := &service.Client{BaseURL: ctrlURL, Tenant: "ci"}
	want, err := ctrlClient.Run(ctx, spec)
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	if want.State != service.StateDone {
		t.Fatalf("control job state = %s (%s)", want.State, want.Error)
	}
	ctrlCmd.Process.Signal(syscall.SIGTERM)
	if code := waitExit(t, ctrlCmd); code != 0 {
		t.Fatalf("idle daemon exited %d on SIGTERM, want 0 (clean drain)", code)
	}

	dataDir := t.TempDir()
	cmd, url := startDaemon(t, dataDir)
	if got := getStatus(t, url+"/readyz"); got != 200 {
		t.Fatalf("readyz before load: HTTP %d, want 200", got)
	}
	cl := &service.Client{BaseURL: url, Tenant: "ci"}
	id, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// SIGTERM once the first run is durably checkpointed and the
	// second is still simulating.
	manifest := filepath.Join(dataDir, "jobs", id+".manifest")
	for deadline := time.Now().Add(time.Minute); manifestRecords(manifest) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("manifest never got its first checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Signal(syscall.SIGTERM)
	if code := waitExit(t, cmd); code != 5 {
		t.Fatalf("daemon exited %d after SIGTERM mid-job, want 5 (resumable state)", code)
	}
	// The accepted job's spec must still be spooled — never dropped.
	if _, err := os.Stat(filepath.Join(dataDir, "jobs", id+".spec.json")); err != nil {
		t.Fatalf("interrupted job's spec missing from spool: %v", err)
	}

	// Restart over the same directory: the job resumes and completes.
	_, url2 := startDaemon(t, dataDir)
	cl2 := &service.Client{BaseURL: url2, Tenant: "ci"}
	got, err := cl2.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait after restart: %v", err)
	}
	if got.State != service.StateDone {
		t.Fatalf("resumed job state = %s (%s), want done", got.State, got.Error)
	}
	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("resumed job has %d runs, control %d", len(got.Runs), len(want.Runs))
	}
	resumedAny := false
	for i := range got.Runs {
		g, w := got.Runs[i], want.Runs[i]
		if g.Bench != w.Bench || g.Cycles != w.Cycles ||
			strings.Join(g.Races, "\n") != strings.Join(w.Races, "\n") {
			t.Errorf("run %d (%s): resumed findings differ from control:\n got %d cycles %v\nwant %d cycles %v",
				i, g.Bench, g.Cycles, g.Races, w.Cycles, w.Races)
		}
		resumedAny = resumedAny || g.Resumed
	}
	if !resumedAny {
		t.Error("no run was served from the pre-SIGTERM checkpoint")
	}
}

// TestServerVersionFlag checks the ldflags-stamped version plumbing.
func TestServerVersionFlag(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-version")
	cmd.Env = append(os.Environ(), "HACCRG_SERVER_HELPER=1")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("-version: %v", err)
	}
	if !strings.HasPrefix(string(out), "haccrg-server ") {
		t.Fatalf("-version output %q", out)
	}
}

// TestServerUsageExit checks that a missing -data is a usage error.
func TestServerUsageExit(t *testing.T) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "HACCRG_SERVER_HELPER=1")
	cmd.Stderr = io.Discard
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("no -data: err %v, want exit 2", err)
	}
}
