// Command haccrg-chaos runs seeded cross-layer chaos campaigns against
// the detection pipeline: deterministic fault schedules (filesystem
// faults under the journal/manifest/spool, HTTP faults between client
// and daemon, planted engine divergence and wedged shard workers) with
// every step checked against the four robustness invariants —
// never-silent-divergence, accepted-jobs-never-dropped,
// crash-resume-byte-identical, replay-equals-live.
//
// A violation is minimized to the smallest fault schedule that still
// breaks the invariant and printed as a one-line repro:
//
//	haccrg-chaos -scenario journal -sub-seed N -fs "crash:op=write,path=.journal,nth=7"
//
// Exit codes: 0 campaign clean (or repro did not reproduce),
// 1 invariant violated, 2 usage or infrastructure error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"haccrg/internal/chaos"
)

func main() {
	fs := flag.NewFlagSet("haccrg-chaos", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "campaign master seed; every fault schedule and workload derives from it")
	steps := fs.Int("steps", 3, "campaign rounds over the selected scenarios")
	scenario := fs.String("scenario", "", "comma-separated scenario subset (default: all)")
	list := fs.Bool("list", false, "list scenarios and exit")
	subSeed := fs.Int64("sub-seed", 0, "reproduce mode: run one scenario under this step seed (requires -scenario)")
	fsSpec := fs.String("fs", "", "reproduce mode: explicit filesystem fault schedule")
	httpSpec := fs.String("http", "", "reproduce mode: explicit HTTP fault schedule")
	reproOut := fs.String("repro-out", "chaos-repro.txt", "write the minimized repro here on violation (empty = stdout only)")
	verbose := fs.Bool("v", false, "narrate every step and injected fault")
	fs.Parse(os.Args[1:])

	if *list {
		for _, s := range chaos.Scenarios() {
			fmt.Println(s)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}

	// Reproduce mode: one scenario, explicit sub-seed and schedules.
	if *subSeed != 0 || *fsSpec != "" || *httpSpec != "" {
		names := splitScenarios(*scenario)
		if len(names) != 1 {
			fmt.Fprintln(os.Stderr, "haccrg-chaos: reproduce mode needs exactly one -scenario")
			os.Exit(2)
		}
		v, err := chaos.Reproduce(ctx, names[0], *subSeed, *fsSpec, *httpSpec, logw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "haccrg-chaos: %v\n", err)
			os.Exit(2)
		}
		if v != nil {
			emit(v, *reproOut)
			os.Exit(1)
		}
		fmt.Println("haccrg-chaos: did not reproduce — invariants held")
		return
	}

	c := &chaos.Campaign{
		Seed:      *seed,
		Steps:     *steps,
		Scenarios: splitScenarios(*scenario),
		Log:       logw,
	}
	rep, err := c.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haccrg-chaos: %v\n", err)
		os.Exit(2)
	}
	if rep.Violation != nil {
		emit(rep.Violation, *reproOut)
		os.Exit(1)
	}
	fmt.Printf("haccrg-chaos: seed %d clean — %d scenario runs, %d faults fired, all invariants held\n",
		*seed, rep.ScenarioRuns, rep.FaultsFired)
}

func splitScenarios(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func emit(v *chaos.Violation, path string) {
	fmt.Print(v.String())
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte(v.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "haccrg-chaos: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("repro written to %s\n", path)
}
