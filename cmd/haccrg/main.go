// Command haccrg runs one benchmark on the simulated GPU with a chosen
// race-detection configuration and reports detected races and
// execution statistics.
//
// Usage:
//
//	haccrg -bench reduce -detect shared+global
//	haccrg -bench scan -single-block -verify
//	haccrg -bench psum -inject psum.fence0
//	haccrg -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"haccrg"
	"haccrg/internal/journal"
	"haccrg/internal/service"
	"haccrg/internal/termtab"
	"haccrg/internal/version"
)

// exitInterrupted is the exit code for a run cut short by SIGINT or
// SIGTERM: distinct from failure (1), usage (2), races (3) and hangs
// (4), so scripts can tell a clean cancellation from a broken run.
const exitInterrupted = 5

// fatalf reports an error and exits non-zero; CLI failures are error
// messages, never panics.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "haccrg: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		bench       = flag.String("bench", "", "benchmark to run (see -list)")
		detect      = flag.String("detect", "shared+global", "detection: off, shared, global, shared+global")
		scale       = flag.Int("scale", 1, "input scale factor")
		sharedGran  = flag.Int("shared-gran", 16, "shared-memory tracking granularity (bytes)")
		globalGran  = flag.Int("global-gran", 4, "global-memory tracking granularity (bytes)")
		singleBlock = flag.Bool("single-block", false, "launch SCAN/KMEANS in their designed-for configuration")
		inject      = flag.String("inject", "", "comma-separated race-injection site IDs")
		verify      = flag.Bool("verify", false, "check kernel output against the host reference")
		small       = flag.Bool("small-gpu", false, "use the 4-SM test device instead of the Table I machine")
		list        = flag.Bool("list", false, "list benchmarks and injection sites")
		allBenches  = flag.Bool("all-benches", false, "run the whole suite and print a race summary (CI mode)")
		jsonOut     = flag.Bool("json", false, "emit a machine-readable JSON race report")
		traceOut    = flag.Bool("trace", false, "print an event timeline after the run")
		maxRaces    = flag.Int("max-races", 20, "maximum distinct races to print")
		record      = flag.String("record", "", "write a durable event journal of the run to this file (replay with haccrg-replay)")
		detPar      = flag.Bool("detect-parallel", runtime.GOMAXPROCS(0) > 1,
			"run the global-memory RDUs as per-partition engines on their own goroutines (findings are byte-identical to serial)")
		detParSh = flag.Bool("detect-parallel-shared", runtime.GOMAXPROCS(0) > 1,
			"run the shared-memory RDUs as per-SM engines on their own goroutines (findings are byte-identical to serial)")

		faultPlan   = flag.String("fault-plan", "", "fault-injection plan, e.g. queue:cap=16,drain=1;flip:rate=1e-5,ecc")
		faultSeed   = flag.Int64("seed", 0, "fault-injection PRNG seed (same plan+seed = same run)")
		degradation = flag.String("degradation", "quarantine", "corrupt-granule policy: quarantine or reinit")
		timeout     = flag.Duration("timeout", 0, "wall-clock watchdog for the run (0 = none), e.g. 30s")
		maxCycles   = flag.Int64("max-cycles", 0, "simulated-cycle budget for the run (0 = unlimited)")
		parallel    = flag.Int("parallel", 0, "concurrent benchmark runs in -all-benches mode (0 = GOMAXPROCS, 1 = serial)")

		staticFilter = flag.Bool("static-filter", false,
			"statically prove sites race-free and let the RDUs skip their shadow checks (findings and cycles are byte-identical; inert under -fault-plan)")
		staticReport = flag.Bool("static-report", false,
			"print the static analyzer's findings and site classification for -bench, without simulating (use haccrg-lint for the full linter CLI)")
		witnessSeed = flag.Bool("witness-seed", false,
			"pre-seed detector quarantine with the static analyzer's verified race witnesses: proven-racy global granules report on first touch (Provenance StaticWitness)")

		serverURL = flag.String("server-url", "",
			"submit the run to a haccrg-server daemon at this base URL instead of simulating locally (retries 429/503 with backoff)")
		tenant      = flag.String("tenant", "", "tenant identity sent with -server-url requests")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("haccrg"))
		return
	}
	if *list {
		listBenchmarks()
		return
	}
	if *serverURL != "" {
		var benches []string
		if *allBenches {
			for _, bm := range haccrg.Benchmarks() {
				benches = append(benches, bm.Name)
			}
		} else if *bench != "" {
			benches = []string{*bench}
		} else {
			fmt.Fprintln(os.Stderr, "haccrg: -server-url needs -bench or -all-benches")
			os.Exit(2)
		}
		spec := &service.JobSpec{
			Kind:                 service.JobBench,
			Benches:              benches,
			Detector:             *detect,
			Scale:                *scale,
			SingleBlock:          *singleBlock,
			SharedGranularity:    *sharedGran,
			GlobalGranularity:    *globalGran,
			DetectParallel:       *detPar,
			DetectParallelShared: *detParSh,
			StaticFilter:         *staticFilter,
			WitnessSeed:          *witnessSeed,
			FaultPlan:            *faultPlan,
			FaultSeed:            *faultSeed,
			Degradation:          *degradation,
			SmallGPU:             *small,
			MaxCycles:            *maxCycles,
			TimeoutMS:            timeoutMS(*timeout),
		}
		if *inject != "" {
			spec.Inject = strings.Split(*inject, ",")
		}
		os.Exit(runRemote(*serverURL, *tenant, spec))
	}
	if *allBenches {
		haccrg.SetParallelism(*parallel)
		os.Exit(runSuite(*scale, *small))
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "haccrg: -bench required (try -list)")
		os.Exit(2)
	}
	if *staticReport {
		os.Exit(printStaticReport(*bench, *scale, *singleBlock, *inject, *small,
			*sharedGran, *globalGran, *jsonOut))
	}

	opts := haccrg.RunOptions{
		Scale:                *scale,
		SingleBlock:          *singleBlock,
		Verify:               *verify,
		Trace:                *traceOut,
		DetectParallel:       *detPar,
		DetectParallelShared: *detParSh,
		StaticFilter:         *staticFilter,
		WitnessSeed:          *witnessSeed,
		FaultPlan:            *faultPlan,
		FaultSeed:            *faultSeed,
		Degradation:          *degradation,
		MaxCycles:            *maxCycles,
		Timeout:              *timeout,
	}
	if *small {
		cfg := haccrg.SmallGPU()
		opts.GPU = &cfg
	}
	if *inject != "" {
		opts.Inject = strings.Split(*inject, ",")
	}
	if *detect != "off" {
		d := haccrg.DefaultDetection()
		d.SharedGranularity = *sharedGran
		d.GlobalGranularity = *globalGran
		switch *detect {
		case "shared":
			d.Global = false
			d.DetectStaleL1 = false
		case "global":
			d.Shared = false
		case "shared+global":
		default:
			fmt.Fprintf(os.Stderr, "haccrg: unknown -detect %q\n", *detect)
			os.Exit(2)
		}
		opts.Detection = &d
	}

	// SIGINT/SIGTERM cancel the simulation through the context; the run
	// winds down via the launch guard rails, flushing the journal (if
	// any) with a well-framed prefix on disk.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var journalFile *journal.FileWriter
	if *record != "" {
		fw, ferr := journal.CreateFile(nil, *record)
		if ferr != nil {
			fatalf("-record: %v", ferr)
		}
		journalFile = fw
		opts.Record = fw
	}

	res, err := haccrg.RunBenchmarkContext(ctx, *bench, opts)
	if journalFile != nil {
		// Close syncs first: an fsync failure here means the journal may
		// not be on disk, and that must fail the run loudly rather than
		// let a later replay quietly come up short.
		if cerr := journalFile.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("-record %s: %w", *record, cerr)
		}
	}
	if err != nil {
		var hang *haccrg.HangError
		if errors.As(err, &hang) && res != nil {
			if ctx.Err() != nil {
				// Interrupted, not hung: the journal prefix on disk is
				// intact and replayable up to the cut.
				fmt.Fprintf(os.Stderr, "haccrg: interrupted: %d cycles, %d blocks retired\n",
					res.Stats.Cycles, res.Stats.BlocksRetired)
				os.Exit(exitInterrupted)
			}
			// Guard-rail trip: structured diagnostics plus the partial
			// stats the aborted run still produced.
			fmt.Fprint(os.Stderr, hang.Diagnose())
			fmt.Fprintf(os.Stderr, "haccrg: partial run: %d cycles, %d blocks retired\n",
				res.Stats.Cycles, res.Stats.BlocksRetired)
			os.Exit(4)
		}
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "haccrg: interrupted: %v\n", err)
			os.Exit(exitInterrupted)
		}
		fatalf("%v", err)
	}

	if *jsonOut {
		if res.Report == nil {
			fmt.Fprintln(os.Stderr, "haccrg: -json requires detection (use -detect)")
			os.Exit(2)
		}
		if err := res.Report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "haccrg:", err)
			os.Exit(1)
		}
		if len(res.Races) > 0 {
			os.Exit(3)
		}
		return
	}

	st := res.Stats
	fmt.Printf("benchmark      %s (scale %d)\n", *bench, *scale)
	fmt.Printf("cycles         %d\n", st.Cycles)
	fmt.Printf("warp instrs    %d (%d thread instrs)\n", st.WarpInstrs, st.ThreadInstrs)
	fmt.Printf("shared reads   %.2f%% of instructions\n", st.SharedReadPct())
	fmt.Printf("global reads   %.2f%% of instructions\n", st.GlobalReadPct())
	fmt.Printf("barriers       %d  fences %d  divergences %d\n", st.Barriers, st.Fences, st.Divergences)
	fmt.Printf("L1 hit rate    %.1f%%   L2 hit rate %.1f%%\n", 100*st.L1.HitRate(), 100*st.L2.HitRate())
	fmt.Printf("DRAM util      %.1f%%   shadow txs %d\n", 100*st.DRAMUtil, st.ShadowTx)
	if res.Health != nil {
		fmt.Println(res.Health)
	}

	if opts.Detection == nil {
		return
	}
	if *staticFilter && res.Report != nil {
		fmt.Printf("static filter  %d shadow checks skipped\n", res.Report.Summary.Checks["filtered"])
	}
	if *witnessSeed {
		seeded := 0
		for _, r := range res.Races {
			if r.Provenance == "StaticWitness" {
				seeded++
			}
		}
		fmt.Printf("witness seed   %d race(s) reported from static witnesses on first touch\n", seeded)
	}
	if *traceOut && res.Trace != nil {
		fmt.Println()
		fmt.Print(res.Trace.Timeline())
	}

	fmt.Printf("\n%d distinct data race(s) detected\n", len(res.Races))
	for i, r := range res.Races {
		if i >= *maxRaces {
			fmt.Printf("... and %d more\n", len(res.Races)-i)
			break
		}
		fmt.Println(" ", r)
	}
	if len(res.Races) > 0 {
		os.Exit(3) // races found: non-zero exit, like a checker tool
	}
}

// printStaticReport runs the static analyzer over a benchmark's
// kernels and prints the findings plus the prover's per-site
// classification; exit 0 when clean, 3 with findings (mirroring the
// races-found exit), 1 on error.
func printStaticReport(bench string, scale int, singleBlock bool, inject string, small bool, sharedGran, globalGran int, jsonOut bool) int {
	opts := haccrg.AnalyzeOptions{Scale: scale, SingleBlock: singleBlock}
	if inject != "" {
		opts.Inject = strings.Split(inject, ",")
	}
	if small {
		cfg := haccrg.SmallGPU()
		opts.GPU = &cfg
	}
	d := haccrg.DefaultDetection()
	d.SharedGranularity = sharedGran
	d.GlobalGranularity = globalGran
	opts.Detection = &d
	analyses, err := haccrg.AnalyzeBenchmark(bench, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haccrg: %v\n", err)
		return 1
	}
	rep := haccrg.BuildStaticReport(analyses, true)
	if jsonOut {
		fmt.Println(rep.JSON())
	} else {
		fmt.Print(rep.Human(analyses, 2, termtab.IsTTY(os.Stdout)))
	}
	if rep.Findings > 0 {
		return 3
	}
	return 0
}

// runSuite runs every benchmark under full detection and prints one
// summary line each; the exit code is 3 if any benchmark raced,
// mirroring single-benchmark behaviour. Benchmarks run concurrently up
// to the configured parallelism; output stays in suite order (each run
// owns its simulated device, so results do not depend on the worker
// count).
func runSuite(scale int, small bool) int {
	opts := haccrg.RunOptions{Scale: scale}
	if small {
		cfg := haccrg.SmallGPU()
		opts.GPU = &cfg
	}
	det := haccrg.DefaultDetection()
	det.SharedGranularity = 4
	opts.Detection = &det

	benches := haccrg.Benchmarks()
	results := make([]*haccrg.RunResult, len(benches))
	errs := make([]error, len(benches))
	workers := haccrg.Parallelism()
	if workers > len(benches) {
		workers = len(benches)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = haccrg.RunBenchmark(benches[i].Name, opts)
			}
		}()
	}
	for i := range benches {
		next <- i
	}
	close(next)
	wg.Wait()

	raced := false
	fmt.Printf("%-8s %10s %8s %8s  %s\n", "bench", "cycles", "races", "reports", "categories")
	for i, bm := range benches {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "haccrg: %s: %v\n", bm.Name, errs[i])
			return 1
		}
		res := results[i]
		cats := map[string]int{}
		var reports int64
		for _, r := range res.Races {
			cats[r.Category.String()]++
			reports += r.Count
		}
		var catStr []string
		for c, n := range cats {
			catStr = append(catStr, fmt.Sprintf("%s:%d", c, n))
		}
		sort.Strings(catStr)
		fmt.Printf("%-8s %10d %8d %8d  %s\n",
			bm.Name, res.Stats.Cycles, len(res.Races), reports, strings.Join(catStr, " "))
		if len(res.Races) > 0 {
			raced = true
		}
	}
	if raced {
		return 3
	}
	return 0
}

// timeoutMS renders a -timeout duration as the spec's millisecond
// field (0 = server default).
func timeoutMS(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return d.Milliseconds()
}

// runRemote submits the run to a haccrg-server daemon and waits for
// the verdict, mirroring the local exit codes: 0 clean, 3 races, 5
// interrupted (locally by a signal, or remotely by a daemon drain —
// resubmitting or restarting the daemon resumes it), 1 failure.
func runRemote(baseURL, tenant string, spec *service.JobSpec) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cl := &service.Client{BaseURL: baseURL, Tenant: tenant}
	id, err := cl.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haccrg: submit: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "haccrg: job %s accepted by %s\n", id, baseURL)
	st, err := cl.Wait(ctx, id)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "haccrg: interrupted waiting for job %s (it keeps running server-side)\n", id)
			return exitInterrupted
		}
		fmt.Fprintf(os.Stderr, "haccrg: %v\n", err)
		return 1
	}
	switch st.State {
	case service.StateFailed:
		fmt.Fprintf(os.Stderr, "haccrg: job %s failed: %s\n", id, st.Error)
		return 1
	case service.StateInterrupted:
		fmt.Fprintf(os.Stderr, "haccrg: job %s interrupted by daemon drain; it resumes when the daemon restarts\n", id)
		return exitInterrupted
	}
	raced := false
	for _, r := range st.Runs {
		note := ""
		if r.Resumed {
			note = "  (resumed)"
		}
		if r.Degraded {
			note += "  [degraded]"
		}
		fmt.Printf("%-8s %-14s %10d cycles %4d race(s)%s\n", r.Bench, r.Detector, r.Cycles, len(r.Races), note)
		for _, race := range r.Races {
			fmt.Println("   ", race)
		}
		if len(r.Races) > 0 {
			raced = true
		}
	}
	if raced {
		return 3
	}
	return 0
}

func listBenchmarks() {
	fmt.Println("Benchmarks (Table II):")
	for _, bm := range haccrg.Benchmarks() {
		fmt.Printf("  %-8s %s\n           inputs: %s\n", bm.Name, bm.Desc, bm.Input)
		for _, s := range bm.Sites {
			fmt.Printf("           site %-16s %s: %s\n", s.ID, s.Kind, s.Desc)
		}
	}
}
