// Command haccrg-replay feeds a recorded event journal (haccrg
// -record, or RunOptions.Record) back through a race detector offline
// — no simulated device, no benchmark build — and checks the replayed
// verdict against the verdict the live run journaled.
//
// Usage:
//
//	haccrg-replay -journal run.jnl
//	haccrg-replay -journal run.jnl -detect grace-addr
//	haccrg-replay -journal run.jnl -info
//
// Exit codes: 0 replay matches the recorded verdict (or no recorded
// verdict to compare, e.g. a crashed run's journal); 3 the verdicts
// differ; 1 failure; 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"

	"haccrg/internal/harness"
	"haccrg/internal/journal"
	"haccrg/internal/version"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "haccrg-replay: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		journalPath = flag.String("journal", "", "journal file to replay (required)")
		detect      = flag.String("detect", "", "replay through this detector instead of the recorded one (off, shared, global, shared+global, sw-haccrg, grace-addr)")
		info        = flag.Bool("info", false, "describe the journal (meta, salvage, counts) without replaying")
		verbose     = flag.Bool("v", false, "print the full replayed verdict")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("haccrg-replay"))
		return
	}
	if *journalPath == "" {
		fmt.Fprintln(os.Stderr, "haccrg-replay: -journal required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*journalPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	if *info {
		res, err := journal.Replay(f, nil)
		if err != nil {
			fatalf("%v", err)
		}
		printInfo(res)
		return
	}

	// First pass: pull the meta record so the detector can be rebuilt.
	// (Journals are small relative to the runs that made them; two
	// sequential reads beat holding every record in memory twice.)
	meta, err := readMeta(*journalPath)
	if err != nil {
		fatalf("%v", err)
	}
	rc := harness.RunConfig{Detector: harness.DetSharedGlobal}
	if meta != nil {
		rc = harness.RunConfig{
			Bench:             meta.Bench,
			Detector:          harness.DetectorKind(meta.Detector),
			SharedGranularity: meta.SharedGranularity,
			GlobalGranularity: meta.GlobalGranularity,
			FaultPlan:         meta.FaultPlan,
			FaultSeed:         meta.FaultSeed,
			Degradation:       meta.Degradation,
		}
	}
	if *detect != "" {
		rc.Detector = harness.DetectorKind(*detect)
	}
	det, err := harness.DetectorFor(rc)
	if err != nil {
		fatalf("%v", err)
	}

	res, err := journal.Replay(f, det)
	if err != nil {
		fatalf("%v", err)
	}
	printInfo(res)
	fmt.Printf("replayed through %s: %d race(s)\n", det.Name(), len(res.Replayed))
	if *verbose {
		for _, r := range res.Replayed {
			fmt.Println(" ", r)
		}
	}
	switch {
	case res.Recorded == nil:
		fmt.Println("no recorded verdict in journal (crashed or truncated run); nothing to compare")
	case res.Match:
		fmt.Println("MATCH: replayed verdict is byte-identical to the recorded one")
	default:
		fmt.Printf("MISMATCH: recorded %d race(s), replayed %d\n", len(res.Recorded), len(res.Replayed))
		if *detect != "" {
			fmt.Println("(expected when replaying through a different detector than the recorded one)")
		}
		os.Exit(3)
	}
}

// readMeta scans the journal for its meta record.
func readMeta(path string) (*journal.Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := journal.NewReader(f)
	if err != nil {
		return nil, err
	}
	for {
		payload, err := r.Next()
		if err != nil {
			return nil, nil // no meta record survived; replay still works
		}
		rec, err := journal.DecodeRecord(payload)
		if err != nil {
			return nil, nil
		}
		if rec.Type == journal.RecMeta {
			return rec.Meta, nil
		}
	}
}

func printInfo(res *journal.ReplayResult) {
	if res.Meta != nil {
		m := res.Meta
		fmt.Printf("run            %s (detector %s, scale %d)\n", m.Bench, m.Detector, m.Scale)
		if m.FaultPlan != "" {
			fmt.Printf("fault plan     %s (seed %d)\n", m.FaultPlan, m.FaultSeed)
		}
	}
	s := res.Salvage
	fmt.Printf("journal        %d record(s), %d bytes intact\n", s.Records, s.Bytes)
	if s.Truncated {
		fmt.Printf("damage         truncated: %s (salvaged prefix replayed)\n", s.Reason)
	}
	fmt.Printf("events         %d kernel(s), %d warp memory event(s)\n", res.Kernels, res.MemEvents)
	if res.Recorded != nil {
		fmt.Printf("recorded       %d race(s)\n", len(res.Recorded))
	}
}
