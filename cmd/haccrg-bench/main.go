// Command haccrg-bench regenerates the paper's evaluation: every table
// and figure of "HAccRG: Hardware-Accelerated Data Race Detection in
// GPUs" (ICPP 2013), from the hardware-parameter table through the
// performance and bandwidth studies.
//
// Usage:
//
//	haccrg-bench -all
//	haccrg-bench -table 3
//	haccrg-bench -fig 7 -scale 2
//	haccrg-bench -exp injected
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"haccrg"
	"haccrg/internal/harness"
	"haccrg/internal/version"
)

// exitInterrupted is the exit code for a sweep cut short by SIGINT or
// SIGTERM. The manifest (if any) holds every completed run; rerunning
// with -resume picks up where the sweep stopped.
const exitInterrupted = 5

// fatalf reports an error and exits non-zero; CLI failures are error
// messages, never panics.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "haccrg-bench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		tableNum = flag.Int("table", 0, "regenerate one table (1-4)")
		figNum   = flag.Int("fig", 0, "regenerate one figure (7-9)")
		exp      = flag.String("exp", "", "named experiment: races, injected, bloom, ids, hw, tlb, regroup, bloom-e2e, syncid, sched, faults, shardbench")
		scale    = flag.Int("scale", 2, "input scale factor for timed experiments")
		jsonOut  = flag.String("json", "", "write the shardbench experiment's machine-readable results to this JSON file")
		baseline = flag.String("baseline", "", "gate the shardbench results against this pinned BENCH_*.json report (exit 1 on >10% regression or any findings drift)")

		faultPlan   = flag.String("fault-plan", "", "fault plan merged into every sweep run (e.g. queue:cap=16,drain=1)")
		faultSeed   = flag.Int64("seed", 0, "fault-injection PRNG seed")
		degradation = flag.String("degradation", "", "corrupt-granule policy: quarantine or reinit")
		timeout     = flag.Duration("timeout", 0, "wall-clock watchdog per sweep run (0 = none)")
		maxCycles   = flag.Int64("max-cycles", 0, "simulated-cycle budget per sweep run (0 = unlimited)")
		healthCSV   = flag.String("health-csv", "", "write the fault study's health columns to this CSV file")

		manifest = flag.String("manifest", "", "journal completed sweep runs to this file (crash-safe; see -resume)")
		resume   = flag.Bool("resume", false, "with -manifest: serve already-completed runs from the manifest instead of re-simulating them")

		parallel   = flag.Int("parallel", 0, "concurrent sweep runs (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("haccrg-bench"))
		return
	}

	haccrg.SetSweepDefaults(haccrg.SweepDefaults{
		FaultPlan:   *faultPlan,
		FaultSeed:   *faultSeed,
		Degradation: *degradation,
		MaxCycles:   *maxCycles,
		Timeout:     *timeout,
	})
	haccrg.SetParallelism(*parallel)

	if *resume && *manifest == "" {
		fmt.Fprintln(os.Stderr, "haccrg-bench: -resume requires -manifest")
		os.Exit(2)
	}
	var mf *harness.Manifest
	if *manifest != "" {
		m, salvage, err := harness.OpenManifest(*manifest, *resume)
		if err != nil {
			fatalf("manifest: %v", err)
		}
		mf = m
		harness.SetManifest(mf)
		if *resume {
			note := ""
			if salvage.Truncated {
				note = fmt.Sprintf(" (torn tail dropped: %s)", salvage.Reason)
			}
			fmt.Fprintf(os.Stderr, "haccrg-bench: resuming: %d completed run(s) recovered from %s%s\n",
				mf.Len(), *manifest, note)
		}
	}

	// SIGINT/SIGTERM cancel every in-flight sweep run through the shared
	// context; completed runs are already synced to the manifest, so the
	// sweep exits with resumable state.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	harness.SetSweepContext(ctx)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	ran := false
	run := func(title string, f func() (string, error)) {
		ran = true
		fmt.Printf("==== %s ====\n", title)
		txt, err := f()
		if err != nil {
			// Every completed run is already synced to the manifest;
			// close it so the journal ends at a frame boundary, then
			// report. An interrupt is resumable state, not a failure.
			if mf != nil {
				mf.Close()
			}
			if ctx.Err() != nil || errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "haccrg-bench: interrupted during %q: %v\n", title, err)
				if mf != nil {
					fmt.Fprintf(os.Stderr, "haccrg-bench: %d completed run(s) saved; rerun with -manifest %s -resume\n",
						mf.Len(), mf.Path())
				}
				os.Exit(exitInterrupted)
			}
			fatalf("%v", err)
		}
		fmt.Println(txt)
	}

	e := haccrg.Experiments
	if *all || *tableNum == 1 {
		run("Table I: GPU hardware parameters", func() (string, error) {
			return e.Table1(haccrg.DefaultGPU()), nil
		})
	}
	if *all || *tableNum == 2 {
		run("Table II: benchmarks and instruction mix", func() (string, error) {
			_, txt, err := e.Table2(*scale)
			return txt, err
		})
	}
	if *all || *tableNum == 3 {
		run("Table III: false races vs tracking granularity", func() (string, error) {
			_, _, txt, err := e.Table3(1)
			return txt, err
		})
	}
	if *all || *tableNum == 4 {
		run("Table IV: global shadow memory overhead", func() (string, error) {
			_, txt, err := e.Table4(*scale)
			return txt, err
		})
	}
	if *all || *figNum == 7 {
		run("Figure 7: performance impact of race detection", func() (string, error) {
			_, txt, err := e.Fig7(*scale)
			return txt, err
		})
	}
	if *all || *figNum == 8 {
		run("Figure 8: shared shadow entries in global memory", func() (string, error) {
			_, txt, err := e.Fig8(*scale)
			return txt, err
		})
	}
	if *all || *figNum == 9 {
		run("Figure 9: DRAM bandwidth utilization", func() (string, error) {
			_, txt, err := e.Fig9(*scale)
			return txt, err
		})
	}
	if *all || *exp == "races" {
		run("Section VI-A: races in unmodified benchmarks", func() (string, error) {
			_, txt, err := e.RealRaces(1)
			return txt, err
		})
	}
	if *all || *exp == "injected" {
		run("Section VI-A: 41 injected races", func() (string, error) {
			_, txt, err := e.Injected(1)
			return txt, err
		})
	}
	if *all || *exp == "bloom" {
		run("Section VI-A2: Bloom-filter signature accuracy", func() (string, error) {
			return e.BloomStress(), nil
		})
	}
	if *all || *exp == "ids" {
		run("Section VI-A2: sync/fence logical-clock usage", func() (string, error) {
			return e.IDUsage(1)
		})
	}
	if *all || *exp == "hw" {
		run("Section VI-C2: hardware overhead", func() (string, error) {
			return e.HardwareCost(), nil
		})
	}
	if *all || *exp == "tlb" {
		run("Section IV-B: virtual-memory shadow translation (extension)", func() (string, error) {
			_, txt, err := e.TLBStudy(1)
			return txt, err
		})
	}
	if *all || *exp == "regroup" {
		run("Section III-A: warp re-grouping ablation (extension)", func() (string, error) {
			return e.WarpRegroupStudy()
		})
	}
	if *all || *exp == "bloom-e2e" {
		run("Section VI-A2: lockset signatures end-to-end (extension)", func() (string, error) {
			return e.BloomEndToEnd()
		})
	}
	if *all || *exp == "sched" {
		run("Warp scheduling ablation: round-robin vs GTO (extension)", func() (string, error) {
			return e.SchedulerStudy(1)
		})
	}
	if *all || *exp == "syncid" {
		run("Section IV-B: sync-ID increment gating ablation (extension)", func() (string, error) {
			return e.SyncIDGating(1)
		})
	}
	if *all || *exp == "faults" {
		run("Fault injection: RDU degradation study (extension)", func() (string, error) {
			rows, txt, err := e.FaultStudy(1, *faultSeed)
			if err != nil {
				return "", err
			}
			if *healthCSV != "" {
				f, err := os.Create(*healthCSV)
				if err != nil {
					return "", err
				}
				defer f.Close()
				if err := harness.WriteFaultStudyCSV(f, rows); err != nil {
					return "", err
				}
				txt += fmt.Sprintf("\nhealth columns written to %s\n", *healthCSV)
			}
			return txt, nil
		})
	}

	if *all || *exp == "shardbench" {
		run("Sharded RDU engines: serial vs global-sharded vs fully-sharded wall clock (extension)", func() (string, error) {
			rows, txt, err := e.ShardBench(*scale)
			if err != nil {
				return "", err
			}
			for _, r := range rows {
				if !r.Match {
					return "", fmt.Errorf("shardbench: %s: sharded findings diverged from serial", r.Bench)
				}
				if !r.FullMatch {
					return "", fmt.Errorf("shardbench: %s: fully-sharded findings diverged from serial", r.Bench)
				}
			}
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					return "", err
				}
				defer f.Close()
				if err := harness.WriteShardBenchJSON(f, *scale, rows); err != nil {
					return "", err
				}
				txt += fmt.Sprintf("\nmachine-readable results written to %s\n", *jsonOut)
			}
			if *baseline != "" {
				f, err := os.Open(*baseline)
				if err != nil {
					return "", fmt.Errorf("-baseline: %w", err)
				}
				base, err := harness.ReadShardBenchJSON(f)
				f.Close()
				if err != nil {
					return "", fmt.Errorf("-baseline: %w", err)
				}
				regressions, notes := harness.CompareShardBench(base, harness.NewShardBenchReport(*scale, rows), 0.10)
				for _, n := range notes {
					txt += fmt.Sprintf("\nbaseline: %s", n)
				}
				if len(regressions) > 0 {
					for _, r := range regressions {
						fmt.Fprintf(os.Stderr, "haccrg-bench: baseline regression: %s\n", r)
					}
					return "", fmt.Errorf("%d regression(s) against %s", len(regressions), *baseline)
				}
				txt += fmt.Sprintf("\nbaseline gate passed against %s\n", *baseline)
			}
			return txt, nil
		})
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if mf != nil {
		if err := mf.Close(); err != nil {
			fatalf("manifest: %v", err)
		}
	}
}
