// Command haccrg-lint runs the static kernel analyzer — CFG
// construction, abstract interpretation, the lint passes
// (barrier-divergence, uninitialized shared reads, shared
// out-of-bounds, fence misuse) and the race-freedom prover — over
// benchmark kernels, without simulating anything.
//
// Usage:
//
//	haccrg-lint -bench psum -sites
//	haccrg-lint -all -json
//	haccrg-lint -check-fixtures
//
// Exit codes: 0 clean, 1 findings (or a failed fixture check),
// 2 usage, 3 analysis error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"haccrg/internal/gpu"
	"haccrg/internal/kernels"
	"haccrg/internal/staticrace"
	"haccrg/internal/termtab"
	"haccrg/internal/version"
)

func main() {
	var (
		bench       = flag.String("bench", "", "benchmark to analyze (see haccrg -list)")
		all         = flag.Bool("all", false, "analyze the whole clean suite")
		checkFix    = flag.Bool("check-fixtures", false, "CI gate: every defective fixture must flag, every clean benchmark must not")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
		sites       = flag.Bool("sites", false, "include the prover's per-site race-freedom classification")
		scale       = flag.Int("scale", 1, "input scale factor")
		singleBlock = flag.Bool("single-block", false, "analyze SCAN/KMEANS in their designed-for configuration")
		inject      = flag.String("inject", "", "comma-separated race-injection site IDs to build in")
		contextN    = flag.Int("context", 2, "disassembly context lines around each finding")
		small       = flag.Bool("small-gpu", false, "assume the 4-SM test device geometry instead of the Table I machine")
		sharedGran  = flag.Int("shared-gran", 16, "shared-memory tracking granularity the prover models (bytes)")
		globalGran  = flag.Int("global-gran", 4, "global-memory tracking granularity the prover models (bytes)")
		warpAware   = flag.Bool("warp-aware", true, "model the detector's warp-aware suppression (core default)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("haccrg-lint"))
		return
	}

	conf := staticrace.Config{
		SharedGranularity: *sharedGran,
		GlobalGranularity: *globalGran,
		WarpAware:         *warpAware,
	}
	cfg := gpu.DefaultConfig()
	if *small {
		cfg = gpu.TestConfig()
	}
	conf.WarpSize = cfg.WarpSize

	params := kernels.Params{Scale: *scale, SingleBlock: *singleBlock}
	if *inject != "" {
		params.Inject = map[string]bool{}
		for _, id := range strings.Split(*inject, ",") {
			params.Inject[id] = true
		}
	}

	switch {
	case *checkFix:
		os.Exit(checkFixtures(cfg, conf, params))
	case *all:
		os.Exit(analyze(kernels.All(), cfg, conf, params, *jsonOut, *sites, *contextN))
	case *bench != "":
		bm := kernels.Get(*bench)
		if bm == nil {
			fmt.Fprintf(os.Stderr, "haccrg-lint: unknown benchmark %q\n", *bench)
			os.Exit(2)
		}
		os.Exit(analyze([]*kernels.Benchmark{bm}, cfg, conf, params, *jsonOut, *sites, *contextN))
	default:
		fmt.Fprintln(os.Stderr, "haccrg-lint: one of -bench, -all or -check-fixtures required")
		flag.Usage()
		os.Exit(2)
	}
}

// analyzeBench builds one benchmark's kernels and analyzes each.
func analyzeBench(bm *kernels.Benchmark, cfg gpu.Config, conf staticrace.Config, p kernels.Params) ([]*staticrace.Analysis, error) {
	dev, err := gpu.NewDevice(cfg, bm.GlobalBytes(p.Scale), nil)
	if err != nil {
		return nil, err
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		return nil, err
	}
	var out []*staticrace.Analysis
	for _, k := range plan.Kernels {
		res, err := staticrace.Analyze(k, conf)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", k.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func analyze(benches []*kernels.Benchmark, cfg gpu.Config, conf staticrace.Config, p kernels.Params, jsonOut, sites bool, contextN int) int {
	if p.Scale < 1 {
		p.Scale = 1
	}
	var analyses []*staticrace.Analysis
	for _, bm := range benches {
		res, err := analyzeBench(bm, cfg, conf, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "haccrg-lint: %s: %v\n", bm.Name, err)
			return 3
		}
		analyses = append(analyses, res...)
	}
	rep := staticrace.BuildReport(analyses, sites)
	if jsonOut {
		fmt.Println(rep.JSON())
	} else {
		fmt.Print(rep.Human(analyses, contextN, termtab.IsTTY(os.Stdout)))
	}
	if rep.Findings > 0 {
		return 1
	}
	return 0
}

// checkFixtures is the analyzer's self-test: the deliberately
// defective fixtures must each raise at least one finding AND at
// least one checker-verified witness (a concrete racing thread pair
// the prover can replay), and the clean suite must raise no findings.
// Clean benchmarks may still carry witnesses — some benchmarks are
// genuinely racy by construction — but every witness anywhere must be
// verified and conflict-free. Exit 0 only when all of that holds.
func checkFixtures(cfg gpu.Config, conf staticrace.Config, p kernels.Params) int {
	if p.Scale < 1 {
		p.Scale = 1
	}
	fail := false
	for _, bm := range kernels.AllIncludingDefective() {
		analyses, err := analyzeBench(bm, cfg, conf, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "haccrg-lint: %s: %v\n", bm.Name, err)
			return 3
		}
		findings, verified, unverified, conflicts := 0, 0, 0, 0
		for _, a := range analyses {
			findings += len(a.Findings)
			conflicts += a.Conflicts
			for _, w := range a.Witnesses {
				if w.Verified {
					verified++
				} else {
					unverified++
				}
			}
		}
		switch {
		case bm.Defective && findings == 0:
			fmt.Printf("FAIL %-8s defective fixture produced no findings\n", bm.Name)
			fail = true
		case bm.Defective && verified == 0:
			fmt.Printf("FAIL %-8s defective fixture produced no verified witness\n", bm.Name)
			fail = true
		case !bm.Defective && findings > 0:
			fmt.Printf("FAIL %-8s clean benchmark produced %d finding(s)\n", bm.Name, findings)
			for _, a := range analyses {
				for _, f := range a.Findings {
					fmt.Printf("       %s pc %d: [%s] %s\n", a.Kernel, f.PC, f.Pass, f.Msg)
				}
			}
			fail = true
		case unverified > 0:
			fmt.Printf("FAIL %-8s shipped %d unverified witness(es)\n", bm.Name, unverified)
			fail = true
		case conflicts > 0:
			fmt.Printf("FAIL %-8s witness checker reported %d conflict(s)\n", bm.Name, conflicts)
			fail = true
		default:
			fmt.Printf("ok   %-8s %d finding(s), %d verified witness(es)\n", bm.Name, findings, verified)
		}
	}
	if fail {
		return 1
	}
	return 0
}
