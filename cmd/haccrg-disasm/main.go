// Command haccrg-disasm prints the assembled programs of a benchmark's
// kernels — useful for inspecting the ISA-level structure (barrier
// placement, critical-section markers, divergent branches with their
// reconvergence points) and for understanding race reports, whose PCs
// index into this listing.
//
// Usage:
//
//	haccrg-disasm -bench reduce
//	haccrg-disasm -bench reduce -inject reduce.fence0   # see the fence vanish
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"haccrg"
	"haccrg/internal/version"
)

func main() {
	var (
		bench       = flag.String("bench", "", "benchmark whose kernels to disassemble")
		inject      = flag.String("inject", "", "comma-separated injection site IDs to apply first")
		single      = flag.Bool("single-block", false, "use the designed-for SCAN/KMEANS launch")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("haccrg-disasm"))
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "haccrg-disasm: -bench required")
		os.Exit(2)
	}
	bm := haccrg.GetBenchmark(*bench)
	if bm == nil {
		fatalf("unknown benchmark %q", *bench)
	}
	dev, err := haccrg.NewDevice(haccrg.SmallGPU(), bm.GlobalBytes(1), nil)
	if err != nil {
		fatalf("%v", err)
	}
	p := haccrg.BenchParams{Scale: 1, SingleBlock: *single}
	if *inject != "" {
		p.Inject = map[string]bool{}
		for _, id := range strings.Split(*inject, ",") {
			p.Inject[id] = true
		}
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		fatalf("%v", err)
	}
	for _, k := range plan.Kernels {
		fmt.Printf("kernel %s  <<<grid %d x block %d, %dB shared, %d params>>>\n",
			k.Name, k.GridDim, k.BlockDim, k.SharedBytes, len(k.Params))
		// Re-validate explicitly: builder output is always valid, but a
		// defect here should print the typed diagnosis, not a bare string.
		if err := k.Prog.Validate(); err != nil {
			var verr *haccrg.ValidateError
			if errors.As(err, &verr) {
				fmt.Fprintf(os.Stderr, "haccrg-disasm: %s: INVALID [%s] at pc %d: %s\n",
					verr.Program, verr.Kind, verr.PC, verr.Detail)
			} else {
				fmt.Fprintf(os.Stderr, "haccrg-disasm: %s: INVALID: %v\n", k.Name, err)
			}
		}
		fmt.Println(k.Prog.Disassemble())
	}
}

// fatalf reports an error and exits non-zero; CLI failures are error
// messages, never panics.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "haccrg-disasm: "+format+"\n", args...)
	os.Exit(1)
}
