package haccrg

// One benchmark per table and figure of the paper's evaluation
// section. Each bench regenerates its artifact end-to-end and reports
// the headline quantity as a custom metric, so `go test -bench=.`
// reproduces the whole evaluation. The benches run one iteration of
// the full experiment per b.N step; they are simulations, so the
// interesting output is the reported metric, not ns/op.

import (
	"math"
	"runtime"
	"testing"
	"time"

	"haccrg/internal/harness"
)

// benchScale keeps the full-evaluation benches tractable while staying
// in the bandwidth-sensitive regime (see EXPERIMENTS.md for the scale
// sensitivity study).
const benchScale = 2

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1(DefaultGPU()) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Mix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Table2(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Bench == "psum" {
				b.ReportMetric(r.GlobalReadPc, "psum-global-read-%")
			}
			if r.Bench == "scan" {
				b.ReportMetric(r.SharedReadPc, "scan-shared-read-%")
			}
		}
	}
}

func BenchmarkTable3Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		shared, _, _, err := harness.Table3(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range shared {
			if r.Bench == "hist" {
				b.ReportMetric(float64(r.False[16]), "hist-false-races-16B")
			}
		}
	}
}

func BenchmarkTable4Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bytes, _, err := harness.Table4(1)
		if err != nil {
			b.Fatal(err)
		}
		total := int64(0)
		for _, v := range bytes {
			total += v
		}
		b.ReportMetric(float64(total)/(1<<20), "total-shadow-MB")
	}
}

func BenchmarkFig7Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Fig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		gmShared, gmBoth := 1.0, 1.0
		for _, r := range rows {
			gmShared *= r.Shared
			gmBoth *= r.SharedGlobal
		}
		n := float64(len(rows))
		b.ReportMetric(pow(gmShared, 1/n), "geomean-shared")
		b.ReportMetric(pow(gmBoth, 1/n), "geomean-shared+global")
	}
}

func BenchmarkFig8SharedInGlobal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Fig8(1)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		var worstName string
		for _, r := range rows {
			if r.Software > worst {
				worst, worstName = r.Software, r.Bench
			}
		}
		b.ReportMetric(worst, "worst-slowdown")
		if worstName != "offt" {
			b.Logf("note: worst fig-8 benchmark is %s (paper: offt)", worstName)
		}
	}
}

func BenchmarkFig9DRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Fig9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var base, both float64
		for _, r := range rows {
			base += r.Off
			both += r.SharedGlobal
		}
		n := float64(len(rows))
		b.ReportMetric(100*base/n, "avg-util-%-base")
		b.ReportMetric(100*both/n, "avg-util-%-detect")
	}
}

func BenchmarkRealRaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, _, err := harness.RealRaces(1)
		if err != nil {
			b.Fatal(err)
		}
		buggy := 0
		for _, r := range reps {
			if r.GlobalSites > 0 {
				buggy++
			}
		}
		b.ReportMetric(float64(buggy), "benchmarks-with-races")
	}
}

func BenchmarkInjected41(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _, err := harness.Injected(1)
		if err != nil {
			b.Fatal(err)
		}
		detected := 0
		for _, r := range results {
			if r.Detected {
				detected++
			}
		}
		b.ReportMetric(float64(detected), "injected-detected")
		if detected != 41 {
			b.Fatalf("detected %d of 41 injected races", detected)
		}
	}
}

func BenchmarkBloomStress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.BloomStress() == "" {
			b.Fatal("empty bloom report")
		}
	}
}

func BenchmarkSWComparison(b *testing.B) {
	// The Section VI-B trio: SCAN, HIST, KMEANS under software HAccRG.
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{"scan", "hist", "kmeans"} {
			base, err := harness.Run(harness.RunConfig{Bench: bench, Detector: harness.DetOff, Scale: benchScale})
			if err != nil {
				b.Fatal(err)
			}
			sw, err := harness.Run(harness.RunConfig{Bench: bench, Detector: harness.DetSoftware, Scale: benchScale})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sw.Stats.Cycles)/float64(base.Stats.Cycles), bench+"-sw-slowdown")
		}
	}
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// BenchmarkParallelSweep measures the sweep engine's wall-clock win:
// the Figure 7 sweep serially and again at full parallelism. On a
// multi-core runner serial-s/parallel-s approaches min(NumCPU, sweep
// width); on one core the two collapse (and the engine must not be
// slower than the serial loop it replaced).
func BenchmarkParallelSweep(b *testing.B) {
	measure := func(b *testing.B, workers int) float64 {
		SetParallelism(workers)
		defer SetParallelism(0)
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, _, err := harness.Fig7(benchScale); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start).Seconds() / float64(b.N)
	}
	var serial float64
	b.Run("serial", func(b *testing.B) {
		serial = measure(b, 1)
		b.ReportMetric(serial, "serial-s")
	})
	b.Run("parallel", func(b *testing.B) {
		par := measure(b, 0) // GOMAXPROCS workers
		b.ReportMetric(par, "parallel-s")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
		if serial > 0 && par > 0 {
			b.ReportMetric(serial/par, "speedup")
		}
	})
}

// --- extension ablations beyond the paper's evaluation ---

func BenchmarkTLBAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _, err := Experiments.TLBStudy(1)
		if err != nil {
			b.Fatal(err)
		}
		var app, sep int64
		for _, r := range results {
			app += r.Appended.Cycles
			sep += r.Separate.Cycles
		}
		if sep > 0 {
			b.ReportMetric(float64(app)/float64(sep), "separate-tlb-speedup")
		}
	}
}

func BenchmarkWarpRegroupAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Experiments.WarpRegroupStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyncIDGatingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Experiments.SyncIDGating(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBloomEndToEndAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Experiments.BloomEndToEnd(); err != nil {
			b.Fatal(err)
		}
	}
}
