// Histogram: explore the accuracy/overhead trade-off of shadow-entry
// tracking granularity (paper Section IV-C and Table III) on HIST,
// whose byte-sized data elements make it the most granularity-
// sensitive benchmark in the suite.
package main

import (
	"fmt"
	"log"

	"haccrg"
)

func main() {
	fmt.Println("HIST under HAccRG at increasing shared-memory tracking granularity")
	fmt.Println("(byte counters of different warps share coarse shadow granules,")
	fmt.Println("so false races appear and grow; storage shrinks in proportion)")
	fmt.Println()
	fmt.Printf("%-12s %-14s %-14s\n", "granularity", "false races", "shadow bits/SM")

	for _, gran := range []int{4, 8, 16, 32, 64} {
		opt := haccrg.DefaultDetection()
		opt.SharedGranularity = gran
		opt.Global = false
		opt.DetectStaleL1 = false
		res, err := haccrg.RunBenchmark("hist", haccrg.RunOptions{
			Detection: &opt,
			Verify:    true, // false positives must not break the histogram itself
		})
		if err != nil {
			log.Fatal(err)
		}
		// HIST has no real shared race: every report is false.
		entries := 16 * 1024 / gran
		fmt.Printf("%-12s %-14d %-14d\n",
			fmt.Sprintf("%d bytes", gran), len(res.Races), entries*12)
	}

	fmt.Println()
	fmt.Println("The paper settles on 16-byte granularity (1.5KB of shadow per SM)")
	fmt.Println("because 7 of the 10 benchmarks show no false positives there;")
	fmt.Println("HIST is one of the exceptions, exactly as Table III reports.")
}
