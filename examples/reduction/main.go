// Reduction: demonstrate fence-race detection (paper Section III-C,
// Figure 4). The REDUCE benchmark's last-block-done pattern stores a
// partial sum, fences, and raises an atomic counter; removing the
// fence lets the last block consume partials before they are
// guaranteed visible — which HAccRG flags by comparing fence-ID
// logical clocks.
package main

import (
	"fmt"
	"log"

	"haccrg"
)

func run(inject []string) []*haccrg.Race {
	opt := haccrg.DefaultDetection()
	opt.SharedGranularity = 4
	res, err := haccrg.RunBenchmark("reduce", haccrg.RunOptions{
		Detection: &opt,
		Inject:    inject,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Races
}

func main() {
	fmt.Println("REDUCE with its fence intact:")
	clean := run(nil)
	fmt.Printf("  %d races (the pattern is correct)\n\n", len(clean))

	fmt.Println("REDUCE with the fence removed (inject reduce.fence0):")
	races := run([]string{"reduce.fence0"})
	fmt.Printf("  %d distinct race(s):\n", len(races))
	fenceRaces := 0
	for i, r := range races {
		if i < 8 {
			fmt.Println("   ", r)
		}
		if r.Category == haccrg.CatFence {
			fenceRaces++
		}
	}
	fmt.Printf("\n%d of them are fence-category RAW races: the last block read\n", fenceRaces)
	fmt.Println("partial sums whose producers' fence clocks had not advanced")
	fmt.Println("since the write — Figure 4(a)'s unsafe consumption.")
}
