// Customdetector: implement your own gpu.Detector against the
// simulator's hook interface. This one is a minimal "first-write wins"
// monitor that flags any global word written by more than one block —
// a much cruder discipline than HAccRG, shown here to document the
// Detector extension point the library exposes.
package main

import (
	"fmt"
	"log"
	"sort"

	"haccrg"
	"haccrg/internal/gpu"
	"haccrg/internal/isa"
)

// blockOwnership records, per global word, the first block that wrote
// it and flags foreign writers.
type blockOwnership struct {
	gpu.NopDetector
	owner     map[uint64]int
	conflicts map[uint64][2]int
}

func newBlockOwnership() *blockOwnership {
	return &blockOwnership{owner: map[uint64]int{}, conflicts: map[uint64][2]int{}}
}

// WarpMem implements gpu.Detector.
func (d *blockOwnership) WarpMem(ev *gpu.WarpMemEvent) int64 {
	if ev.Space != isa.SpaceGlobal || !ev.Write {
		return 0
	}
	for i := range ev.Lanes {
		word := ev.Lanes[i].Addr / 4
		if first, seen := d.owner[word]; !seen {
			d.owner[word] = ev.Block
		} else if first != ev.Block {
			if _, dup := d.conflicts[word]; !dup {
				d.conflicts[word] = [2]int{first, ev.Block}
			}
		}
	}
	return 0 // a monitor, not a hardware model: no timing cost
}

func main() {
	det := newBlockOwnership()
	dev := haccrg.MustNewDevice(haccrg.SmallGPU(), 1<<20, det)

	// Run the buggy SCAN through the custom monitor: every block
	// scans the same array, so ownership conflicts abound.
	bm := haccrg.GetBenchmark("scan")
	plan, err := bm.Build(dev, haccrg.BenchParams{Scale: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := plan.Run(dev); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("block-ownership monitor on buggy SCAN: %d contested words\n", len(det.conflicts))
	var words []uint64
	for w := range det.conflicts {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	for i, w := range words {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(words)-5)
			break
		}
		pair := det.conflicts[w]
		fmt.Printf("  word %#x written by blocks %d and %d\n", w*4, pair[0], pair[1])
	}
	fmt.Println()
	fmt.Println("HAccRG's RDUs plug into the same Detector interface, but add the")
	fmt.Println("happens-before state machine, lockset signatures, fence clocks and")
	fmt.Println("the shadow-memory traffic model. See internal/core.")
}
