// Hashtable: demonstrate lockset-based critical-section race detection
// (paper Section III-B). The HASH benchmark guards each bucket with a
// CAS lock bracketed by the paper's marker instructions; the detector
// tracks each thread's lockset in a Bloom-filter "atomic ID" and
// reports accesses whose lockset intersection is empty, or which mix
// protected and unprotected access.
package main

import (
	"fmt"
	"log"

	"haccrg"
)

func run(title string, inject []string) {
	opt := haccrg.DefaultDetection()
	opt.SharedGranularity = 4
	res, err := haccrg.RunBenchmark("hash", haccrg.RunOptions{
		Detection: &opt,
		Inject:    inject,
		Verify:    len(inject) == 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	lockset := 0
	for _, r := range res.Races {
		if r.Category == haccrg.CatLockset {
			lockset++
		}
	}
	fmt.Printf("%s: %d races (%d lockset)\n", title, len(res.Races), lockset)
	for i, r := range res.Races {
		if i >= 5 {
			fmt.Printf("    ... and %d more\n", len(res.Races)-i)
			break
		}
		fmt.Println("   ", r)
	}
	fmt.Println()
}

func main() {
	fmt.Println("HASH: per-bucket CAS locks with marker instructions and fenced release")
	fmt.Println()
	run("correct locking", nil)
	run("dummy access inside the critical section (hash.crit0)", []string{"hash.crit0"})
	run("dummy access outside the critical section (hash.crit1)", []string{"hash.crit1"})

	fmt.Println("Both injections reproduce Section VI-A's critical-section races:")
	fmt.Println("a location touched both under a lock and bare has a null lockset")
	fmt.Println("intersection, so HAccRG reports it whichever side wrote.")
}
