// Quickstart: write a small GPU kernel against the simulator's ISA,
// run it under HAccRG, and watch the detector catch a missing
// __syncthreads between a producer warp and a consumer warp.
package main

import (
	"fmt"
	"log"

	"haccrg"
	"haccrg/internal/isa"
)

// buildKernel assembles a two-warp kernel: warp 0 stores tid into
// shared[tid], warp 1 reads warp 0's slots. With withBarrier=false the
// kernel races.
func buildKernel(withBarrier bool) *haccrg.Kernel {
	b := haccrg.NewKernelBuilder("quickstart")
	const (
		rTid  = isa.Reg(1)
		rAddr = isa.Reg(2)
		rVal  = isa.Reg(3)
	)
	b.Sreg(rTid, isa.SregTid)
	// Warp 0 (tid < 32): shared[tid] = tid.
	b.Setpi(0, isa.CmpLT, rTid, 32)
	b.If(0)
	b.Muli(rAddr, rTid, 4)
	b.St(isa.SpaceShared, rAddr, 0, rTid, 4)
	b.EndIf()
	if withBarrier {
		b.Bar()
	}
	// Warp 1 (tid >= 32): read shared[tid-32].
	b.Setpi(1, isa.CmpGE, rTid, 32)
	b.If(1)
	b.Subi(rVal, rTid, 32)
	b.Muli(rAddr, rVal, 4)
	b.Ld(rVal, isa.SpaceShared, rAddr, 0, 4)
	b.EndIf()
	b.Exit()
	return &haccrg.Kernel{
		Name:        "quickstart",
		Prog:        b.MustBuild(),
		GridDim:     1,
		BlockDim:    64,
		SharedBytes: 32 * 4,
	}
}

func run(withBarrier bool) {
	opt := haccrg.DefaultDetection()
	opt.SharedGranularity = 4 // word-granularity tracking
	det := haccrg.MustNewDetector(opt)
	dev := haccrg.MustNewDevice(haccrg.SmallGPU(), 1<<16, det)

	stats, err := dev.Launch(buildKernel(withBarrier))
	if err != nil {
		log.Fatal(err)
	}
	label := "WITHOUT barrier"
	if withBarrier {
		label = "WITH barrier"
	}
	fmt.Printf("%s: %d cycles, %d races\n", label, stats.Cycles, len(det.Races()))
	for _, r := range det.Races() {
		fmt.Println("   ", r)
	}
}

func main() {
	fmt.Println("HAccRG quickstart: producer/consumer warps sharing memory")
	run(false)
	run(true)
}
