// Package haccrg is a from-scratch reproduction of "HAccRG:
// Hardware-Accelerated Data Race Detection in GPUs" (Holey, Mekkat,
// Zhai — ICPP 2013): a cycle-level SIMT GPU simulator with
// hardware Race Detection Units attached to the shared-memory banks
// and the memory partitions, plus the paper's software baselines and
// its ten-benchmark evaluation suite.
//
// The top-level API wraps the internal packages:
//
//	dev := haccrg.MustNewDevice(haccrg.DefaultGPU(), 1<<22, det)
//	det := haccrg.MustNewDetector(haccrg.DefaultDetection())
//	res, err := haccrg.RunBenchmark("reduce", haccrg.RunOptions{})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced tables and figures.
package haccrg

import (
	"context"
	"fmt"
	"io"
	"time"

	"haccrg/internal/core"
	"haccrg/internal/fault"
	"haccrg/internal/gpu"
	"haccrg/internal/harness"
	"haccrg/internal/isa"
	"haccrg/internal/kernels"
	"haccrg/internal/staticrace"
	"haccrg/internal/tlb"
	"haccrg/internal/trace"
)

// Re-exported core types. Aliases keep the internal packages as the
// implementation while giving users importable names.
type (
	// GPUConfig describes the simulated device (Table I parameters).
	GPUConfig = gpu.Config
	// Device is a simulated GPU.
	Device = gpu.Device
	// Kernel is a launchable grid.
	Kernel = gpu.Kernel
	// LaunchStats aggregates execution statistics for a launch.
	LaunchStats = gpu.LaunchStats
	// DetectionOptions configures HAccRG (granularities, Bloom layout,
	// which RDUs are enabled).
	DetectionOptions = core.Options
	// Detector is the HAccRG race-detection engine.
	Detector = core.Detector
	// Race is one distinct detected data race.
	Race = core.Race
	// Benchmark is one of the paper's ten workloads.
	Benchmark = kernels.Benchmark
	// BenchParams configures a workload build (scale, injections).
	BenchParams = kernels.Params
	// ProgramBuilder assembles kernels in the simulator's ISA.
	ProgramBuilder = isa.Builder
	// HangError is the structured abort report of a launch that
	// deadlocked, exhausted its cycle budget, or was canceled; it
	// carries per-block barrier-wait diagnostics (see Diagnose).
	HangError = gpu.HangError
	// LaunchLimits bounds a kernel launch (simulated-cycle budget).
	LaunchLimits = gpu.LaunchLimits
	// DetectorHealth is the detector's graceful-degradation report:
	// dropped checks, applied corruption, quarantines, and an estimate
	// of the resulting false-negative exposure.
	DetectorHealth = gpu.DetectorHealth
	// FaultPlan is a deterministic fault-injection plan for the RDU
	// pipeline and shadow memory.
	FaultPlan = fault.Plan
	// ValidateError is a typed ISA validation failure: the offending
	// program, PC (-1 for whole-program defects), a machine-checkable
	// kind, and a human detail string.
	ValidateError = isa.ValidateError
	// ValidateErrKind enumerates the ISA validation failure classes.
	ValidateErrKind = isa.ValidateErrKind
)

// ParseFaultPlan parses a fault-plan spec such as
// "queue:cap=16,drain=1;flip:rate=1e-5,ecc;spike:extra=400,period=64".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// Race kind and category constants, re-exported.
const (
	KindWAR = core.KindWAR
	KindRAW = core.KindRAW
	KindWAW = core.KindWAW

	CatBarrier    = core.CatBarrier
	CatCrossBlock = core.CatCrossBlock
	CatLockset    = core.CatLockset
	CatFence      = core.CatFence
	CatStaleL1    = core.CatStaleL1
	CatIntraWarp  = core.CatIntraWarp
)

// DefaultGPU returns the paper's Table I machine: an NVIDIA Quadro
// FX5800-class GPU (30 SMs, 8 memory partitions) with Fermi-style
// L1/L2 caches.
func DefaultGPU() GPUConfig { return gpu.DefaultConfig() }

// SmallGPU returns a scaled-down device (4 SMs, 2 partitions) for
// fast experimentation and tests.
func SmallGPU() GPUConfig { return gpu.TestConfig() }

// DefaultDetection returns the paper's evaluated HAccRG configuration:
// both RDUs, 16-byte shared / 4-byte global granularity, warp-aware
// reporting, 16-bit 2-bin lockset signatures.
func DefaultDetection() DetectionOptions { return core.DefaultOptions() }

// NewDetector builds a HAccRG detector.
func NewDetector(opt DetectionOptions) (*Detector, error) { return core.New(opt) }

// MustNewDetector is NewDetector panicking on invalid options.
func MustNewDetector(opt DetectionOptions) *Detector { return core.MustNew(opt) }

// NewDevice builds a simulated GPU with globalBytes of device memory
// and an optional race detector (nil disables detection).
func NewDevice(cfg GPUConfig, globalBytes int, det gpu.Detector) (*Device, error) {
	return gpu.NewDevice(cfg, globalBytes, det)
}

// MustNewDevice is NewDevice panicking on error.
func MustNewDevice(cfg GPUConfig, globalBytes int, det gpu.Detector) *Device {
	return gpu.MustNewDevice(cfg, globalBytes, det)
}

// NewKernelBuilder starts assembling a kernel program.
func NewKernelBuilder(name string) *ProgramBuilder { return isa.NewBuilder(name) }

// Benchmarks returns the paper's benchmark suite in Table II order.
func Benchmarks() []*Benchmark { return kernels.All() }

// GetBenchmark returns a benchmark by name, or nil.
func GetBenchmark(name string) *Benchmark { return kernels.Get(name) }

// RunOptions configures RunBenchmark.
type RunOptions struct {
	// Detection enables HAccRG with these options (nil = detection off).
	Detection *DetectionOptions
	// Scale multiplies the workload's input sizes (default 1).
	Scale int
	// SingleBlock launches SCAN/KMEANS in their designed-for (bug-free)
	// configuration.
	SingleBlock bool
	// Inject activates race-injection sites by ID (see Benchmark.Sites).
	Inject []string
	// GPU overrides the device configuration (nil = DefaultGPU).
	GPU *GPUConfig
	// Verify checks kernel output against the host reference where the
	// benchmark defines one.
	Verify bool
	// Trace records an event timeline (kernel lifecycle, barriers,
	// races) alongside the run.
	Trace bool
	// Record writes a durable event journal of the run — every kernel
	// launch, warp memory event, fence response and verdict, in the
	// CRC-framed format of internal/journal — suitable for offline
	// replay through haccrg-replay (nil = no journal).
	Record io.Writer

	// DetectParallel runs the global-memory RDUs as sharded
	// per-partition engines on their own goroutines (see
	// DetectionOptions.Parallel): findings are byte-identical to the
	// serial engine, only wall-clock time changes. Requires Detection.
	DetectParallel bool

	// DetectParallelShared does the same for the shared-memory RDUs:
	// one engine per SM (see DetectionOptions.ParallelShared). Findings
	// remain byte-identical in every engine combination. Requires
	// Detection.
	DetectParallelShared bool

	// StaticFilter runs the static race prover (internal/staticrace)
	// over the benchmark's kernels and lets the RDUs skip shadow checks
	// at sites proven race-free. Findings and cycle counts are
	// byte-identical to an unfiltered run — only detector work changes
	// (Report.Summary.Checks["filtered"] counts the skips). Requires
	// Detection; inert when a FaultPlan is attached (dropping checks
	// would desynchronize the injector's PRNG streams).
	StaticFilter bool

	// WitnessSeed pre-seeds detector quarantine with the static
	// analyzer's verified race witnesses: statically-proven racy global
	// granules report on first touch, tagged with StaticWitness
	// provenance (Race.Provenance). Findings stay byte-identical across
	// the serial and sharded engines and under fault plans. Requires
	// Detection.
	WitnessSeed bool

	// FaultPlan is a fault-injection spec (see ParseFaultPlan); empty
	// runs fault-free. Requires Detection.
	FaultPlan string
	// FaultSeed seeds the fault injector; the same plan and seed
	// reproduce the same faults byte for byte.
	FaultSeed int64
	// Degradation is the corrupt-granule policy: "quarantine"
	// (default) or "reinit".
	Degradation string
	// MaxCycles aborts the run once the simulated clock passes this
	// budget (0 = unlimited); the error is a *HangError with partial
	// stats still returned.
	MaxCycles int64
	// Timeout is a wall-clock watchdog over the whole run (0 = none).
	Timeout time.Duration
}

// RunResult is RunBenchmark's outcome.
type RunResult struct {
	Stats *LaunchStats
	Races []*Race
	// Report is the machine-readable detection summary (nil when
	// detection is off).
	Report *core.Report
	// Trace is the recorded event log (nil unless RunOptions.Trace).
	Trace *trace.Recorder
	// Health is the detector's degradation report (nil when detection
	// is off).
	Health *DetectorHealth
}

// RunBenchmark builds, runs and optionally verifies one benchmark.
func RunBenchmark(name string, opts RunOptions) (*RunResult, error) {
	return RunBenchmarkContext(context.Background(), name, opts)
}

// detectorKind names the DetectorKind a set of explicit detection
// options corresponds to — the identity under which journal metadata
// and server job specs describe the run.
func detectorKind(d *DetectionOptions) harness.DetectorKind {
	switch {
	case d == nil:
		return harness.DetOff
	case d.SharedShadowInGlobal:
		return harness.DetFig8
	case d.Shared && d.Global:
		return harness.DetSharedGlobal
	case d.Shared:
		return harness.DetShared
	case d.Global:
		return harness.DetGlobal
	}
	return harness.DetOff
}

// RunBenchmarkContext is RunBenchmark under a context: cancellation
// (e.g. a CLI's SIGINT handler) aborts the simulation with a
// *HangError carrying partial stats, and — when a journal is being
// recorded — leaves a well-framed journal prefix behind.
//
// The execution itself is harness.ExecContext — the same job core the
// CLIs, the experiment sweeps, and the haccrg-server workers run — so
// a benchmark behaves identically no matter which entry point launched
// it. The facade adds only option validation and the mapping between
// the public RunOptions and the harness job configuration.
func RunBenchmarkContext(ctx context.Context, name string, opts RunOptions) (*RunResult, error) {
	if kernels.Get(name) == nil {
		return nil, fmt.Errorf("haccrg: unknown benchmark %q (have %v)", name, benchNames())
	}
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	if opts.Detection == nil {
		if opts.FaultPlan != "" {
			return nil, fmt.Errorf("haccrg: FaultPlan requires Detection (there is no RDU pipeline to fault)")
		}
		if opts.StaticFilter {
			return nil, fmt.Errorf("haccrg: StaticFilter requires Detection (there are no RDU checks to skip)")
		}
		if opts.WitnessSeed {
			return nil, fmt.Errorf("haccrg: WitnessSeed requires Detection (there is no detector to seed)")
		}
	}
	switch opts.Degradation {
	case "", "quarantine", "reinit":
	default:
		return nil, fmt.Errorf("haccrg: unknown degradation policy %q (want quarantine or reinit)", opts.Degradation)
	}
	rc := harness.RunConfig{
		Bench:                name,
		Detector:             detectorKind(opts.Detection),
		Scale:                opts.Scale,
		SingleBlock:          opts.SingleBlock,
		Inject:               opts.Inject,
		DetectParallel:       opts.DetectParallel,
		DetectParallelShared: opts.DetectParallelShared,
		StaticFilter:         opts.StaticFilter,
		WitnessSeed:          opts.WitnessSeed,
		GPU:                  opts.GPU,
		FaultPlan:            opts.FaultPlan,
		FaultSeed:            opts.FaultSeed,
		Degradation:          opts.Degradation,
		MaxCycles:            opts.MaxCycles,
		Timeout:              opts.Timeout,
	}
	xo := harness.ExecOptions{
		Detection: opts.Detection,
		Verify:    opts.Verify,
		Trace:     opts.Trace,
		Record:    opts.Record,
	}
	hres, err := harness.ExecContext(ctx, rc, xo)
	if hres == nil {
		return nil, err
	}
	// On an aborted run (a *HangError) the result is returned alongside
	// the error: partial stats, the races found so far, and health.
	return &RunResult{
		Stats:  hres.Stats,
		Races:  hres.Races,
		Report: hres.Report,
		Trace:  hres.TraceRec,
		Health: hres.Health,
	}, err
}

// Static-analysis re-exports: the CFG/dataflow analyzer, its lint
// findings, and the race-freedom prover (see DESIGN.md, "Static
// analysis").
type (
	// StaticAnalysis is one kernel's full analysis result: CFG,
	// findings, per-site race-freedom verdicts and the filterable mask.
	StaticAnalysis = staticrace.Analysis
	// StaticReport is the serializable multi-kernel report.
	StaticReport = staticrace.SuiteReport
	// StaticFinding is one lint diagnostic, addressed by PC.
	StaticFinding = staticrace.Finding
	// StaticWitness is one machine-checked defect proof (a concrete
	// thread pair, instruction pair and, for races, a granule).
	StaticWitness = staticrace.Witness
)

// AnalyzeOptions configures AnalyzeBenchmark.
type AnalyzeOptions struct {
	// Scale, SingleBlock, Inject select the same kernel variants a run
	// with the matching RunOptions would launch.
	Scale       int
	SingleBlock bool
	Inject      []string
	// GPU sets the device geometry the analysis assumes (warp size;
	// nil = DefaultGPU).
	GPU *GPUConfig
	// Detection supplies the tracking granularities the prover models
	// (nil = DefaultDetection).
	Detection *DetectionOptions
}

// AnalyzeBenchmark builds a benchmark's kernels and runs the static
// analyzer over them without simulating anything: CFG construction,
// abstract interpretation, the lint passes, and the race-freedom
// prover. The returned analyses are in plan order; render them with
// BuildStaticReport.
func AnalyzeBenchmark(name string, opts AnalyzeOptions) ([]*StaticAnalysis, error) {
	bm := kernels.Get(name)
	if bm == nil {
		return nil, fmt.Errorf("haccrg: unknown benchmark %q (have %v)", name, benchNames())
	}
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	cfg := gpu.DefaultConfig()
	if opts.GPU != nil {
		cfg = *opts.GPU
	}
	dev, err := gpu.NewDevice(cfg, bm.GlobalBytes(opts.Scale), nil)
	if err != nil {
		return nil, err
	}
	p := kernels.Params{Scale: opts.Scale, SingleBlock: opts.SingleBlock}
	if len(opts.Inject) > 0 {
		p.Inject = map[string]bool{}
		for _, id := range opts.Inject {
			p.Inject[id] = true
		}
	}
	plan, err := bm.Build(dev, p)
	if err != nil {
		return nil, err
	}
	dopt := core.DefaultOptions()
	if opts.Detection != nil {
		dopt = *opts.Detection
	}
	conf := staticrace.Config{
		WarpSize:          cfg.WarpSize,
		SharedGranularity: dopt.SharedGranularity,
		GlobalGranularity: dopt.GlobalGranularity,
		WarpAware:         dopt.WarpAware,
	}
	var out []*StaticAnalysis
	for _, k := range plan.Kernels {
		res, err := staticrace.Analyze(k, conf)
		if err != nil {
			return nil, fmt.Errorf("haccrg: static analysis of %s kernel %s: %w", name, k.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// BuildStaticReport converts analyses into the serializable report
// (withSites includes the prover's per-site classification).
func BuildStaticReport(analyses []*StaticAnalysis, withSites bool) *StaticReport {
	return staticrace.BuildReport(analyses, withSites)
}

func tlbDefaultConfig() tlb.Config { return tlb.DefaultConfig }

func benchNames() []string {
	var out []string
	for _, b := range kernels.All() {
		out = append(out, b.Name)
	}
	return out
}

// Experiments re-exports the harness entry points so downstream users
// can regenerate the paper's tables and figures programmatically.
var Experiments = struct {
	Table1       func(GPUConfig) string
	Table2       func(scale int) ([]harness.Table2Row, string, error)
	Table3       func(scale int) ([]harness.Table3Row, []harness.Table3Row, string, error)
	Table4       func(scale int) (map[string]int64, string, error)
	Fig7         func(scale int) ([]harness.Fig7Row, string, error)
	Fig8         func(scale int) ([]harness.Fig8Row, string, error)
	Fig9         func(scale int) ([]harness.Fig9Row, string, error)
	RealRaces    func(scale int) ([]harness.RealRaceReport, string, error)
	Injected     func(scale int) ([]harness.InjectedResult, string, error)
	BloomStress  func() string
	IDUsage      func(scale int) (string, error)
	HardwareCost func() string
	// Extensions beyond the paper's evaluation.
	TLBStudy         func(scale int) ([]harness.TLBResult, string, error)
	WarpRegroupStudy func() (string, error)
	BloomEndToEnd    func() (string, error)
	SyncIDGating     func(scale int) (string, error)
	SchedulerStudy   func(scale int) (string, error)
	FaultStudy       func(scale int, seed int64) ([]harness.FaultStudyRow, string, error)
	ShardBench       func(scale int) ([]harness.ShardBenchRow, string, error)
}{
	Table1:       harness.Table1,
	Table2:       harness.Table2,
	Table3:       harness.Table3,
	Table4:       harness.Table4,
	Fig7:         harness.Fig7,
	Fig8:         harness.Fig8,
	Fig9:         harness.Fig9,
	RealRaces:    harness.RealRaces,
	Injected:     harness.Injected,
	BloomStress:  harness.BloomStress,
	IDUsage:      harness.IDUsage,
	HardwareCost: harness.HardwareCost,
	TLBStudy: func(scale int) ([]harness.TLBResult, string, error) {
		return harness.TLBStudy(scale, tlbDefaultConfig())
	},
	WarpRegroupStudy: func() (string, error) {
		_, _, txt, err := harness.WarpRegroupStudy()
		return txt, err
	},
	BloomEndToEnd:  harness.BloomEndToEnd,
	SyncIDGating:   harness.SyncIDGatingStudy,
	SchedulerStudy: harness.SchedulerStudy,
	FaultStudy:     harness.FaultStudy,
	ShardBench:     harness.ShardBench,
}

// SweepDefaults mirrors harness.SweepDefaults for CLI use.
type SweepDefaults = harness.SweepDefaults

// SetSweepDefaults installs process-wide fault/guard-rail defaults
// merged into every experiment sweep run (how the CLIs thread
// -fault-plan/-seed/-timeout/-max-cycles through the experiment
// drivers).
func SetSweepDefaults(d SweepDefaults) { harness.SetSweepDefaults(d) }

// SetParallelism sets how many simulations the experiment sweeps run
// concurrently: n <= 0 restores the default (GOMAXPROCS), n == 1
// forces serial sweeps. Each run owns its device and detector, and
// results are assembled in input order, so sweep output is
// byte-identical at any setting.
func SetParallelism(n int) { harness.SetParallelism(n) }

// Parallelism returns the resolved sweep worker count (always >= 1).
func Parallelism() int { return harness.Parallelism() }
