module haccrg

go 1.22
