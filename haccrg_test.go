package haccrg

import (
	"testing"

	"haccrg/internal/isa"
)

func TestRunBenchmarkBasics(t *testing.T) {
	small := SmallGPU()
	res, err := RunBenchmark("reduce", RunOptions{GPU: &small, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	if res.Races != nil {
		t.Fatal("races without detection enabled")
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, err := RunBenchmark("missing", RunOptions{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunBenchmarkWithDetection(t *testing.T) {
	small := SmallGPU()
	opt := DefaultDetection()
	opt.SharedGranularity = 4
	res, err := RunBenchmark("scan", RunOptions{GPU: &small, Detection: &opt})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) == 0 {
		t.Fatal("scan's documented multi-block bug not detected through the facade")
	}
	for _, r := range res.Races {
		if r.Category != CatCrossBlock && r.Category != CatFence && r.Category != CatStaleL1 {
			t.Errorf("unexpected category %v for scan", r.Category)
		}
	}
}

func TestRunBenchmarkInjection(t *testing.T) {
	small := SmallGPU()
	opt := DefaultDetection()
	res, err := RunBenchmark("psum", RunOptions{
		GPU: &small, Detection: &opt, Inject: []string{"psum.fence0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fence := false
	for _, r := range res.Races {
		if r.Category == CatFence {
			fence = true
		}
	}
	if !fence {
		t.Fatalf("fence injection not detected: %v", res.Races)
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	all := Benchmarks()
	if len(all) != 10 {
		t.Fatalf("expected the paper's 10 benchmarks, got %d", len(all))
	}
	if GetBenchmark("hash") == nil || GetBenchmark("nope") != nil {
		t.Fatal("registry lookups broken")
	}
}

func TestCustomKernelThroughFacade(t *testing.T) {
	det := MustNewDetector(DefaultDetection())
	dev := MustNewDevice(SmallGPU(), 1<<16, det)

	b := NewKernelBuilder("custom")
	b.Sreg(1, isa.SregGtid)
	b.Ldp(2, 0)
	b.Muli(3, 1, 4)
	b.Add(2, 2, 3)
	b.St(isa.SpaceGlobal, 2, 0, 1, 4)
	b.Exit()
	out := dev.MustMalloc(1024)
	st, err := dev.Launch(&Kernel{
		Name: "custom", Prog: b.MustBuild(),
		GridDim: 4, BlockDim: 64, Params: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.GlobalWrites != 256 {
		t.Fatalf("writes = %d, want 256", st.GlobalWrites)
	}
	if got := dev.Global.U32(int(out)/4 + 100); got != 100 {
		t.Fatalf("out[100] = %d", got)
	}
	if len(det.Races()) != 0 {
		t.Fatalf("disjoint writes raced: %v", det.Races()[0])
	}
}

func TestExperimentsExposed(t *testing.T) {
	if Experiments.Table1(DefaultGPU()) == "" {
		t.Fatal("Table1 empty")
	}
	if Experiments.BloomStress() == "" {
		t.Fatal("BloomStress empty")
	}
	if Experiments.HardwareCost() == "" {
		t.Fatal("HardwareCost empty")
	}
}
